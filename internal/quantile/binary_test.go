package quantile

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// binaryRound encodes est with the compact binary codec and decodes it
// back, asserting the whole buffer is consumed.
func binaryRound(t *testing.T, est Estimator) Estimator {
	t.Helper()
	data, err := AppendBinary(nil, est)
	if err != nil {
		t.Fatalf("binary encode: %v", err)
	}
	out, rest, err := DecodeBinary(data)
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("binary decode left %d bytes", len(rest))
	}
	return out
}

// TestBinaryGobEquivalence: decoding the compact binary payload must yield
// exactly the state gob decoding yields — asserted byte-for-byte by gob
// re-encoding both decodes. This is the wire-codec mirror of the merge
// commute test: v3 (gob) and v4 (binary) fleets must agree on estimator
// state to the bit.
func TestBinaryGobEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	feed := func(est Estimator, n int) Estimator {
		for i := 0; i < n; i++ {
			est.Insert(100 + rng.NormFloat64()*10)
		}
		return est
	}
	cases := map[string]Estimator{
		"exact":         feed(NewExact(), 500),
		"exact-empty":   NewExact(),
		"gk":            feed(MustGK(0.01), 5000),
		"ckms":          feed(MustCKMS(TrackedTargets()), 5000),
		"ckms-buffered": feed(MustCKMS(TrackedTargets()), 100), // under ckmsBufSize: all in buf
		"reservoir": feed(func() Estimator {
			r, _ := NewReservoir(128, rand.New(rand.NewSource(9)))
			return r
		}(), 2000),
	}
	for name, est := range cases {
		viaGob := gobRound(t, est)
		viaBin := binaryRound(t, est)
		if got, want := encodeBytes(t, viaBin), encodeBytes(t, viaGob); !bytes.Equal(got, want) {
			t.Errorf("%s: binary-decoded state differs from gob-decoded state", name)
		}
		if viaBin.Count() != est.Count() {
			t.Errorf("%s: count %d, want %d", name, viaBin.Count(), est.Count())
		}
		if est.Count() > 0 {
			for _, q := range TrackedQuantiles {
				ov, err1 := est.Query(q)
				bv, err2 := viaBin.Query(q)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: query errs %v %v", name, err1, err2)
				}
				if math.Float64bits(ov) != math.Float64bits(bv) {
					t.Errorf("%s q=%v: %v != %v", name, q, bv, ov)
				}
			}
		}
	}
}

// TestBinarySpecialValues: the order-preserving bit mapping must be a
// bijection — NaN payloads, infinities and signed zeros all round-trip
// bit-exactly through the delta chain.
func TestBinarySpecialValues(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1), 1, -1,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	}
	e := NewExact()
	e.InsertBatch(specials)
	got := binaryRound(t, e).(*Exact)
	if len(got.vals) != len(specials) {
		t.Fatalf("%d values, want %d", len(got.vals), len(specials))
	}
	for i, v := range specials {
		if math.Float64bits(got.vals[i]) != math.Float64bits(v) {
			t.Errorf("value %d: %x, want %x", i, math.Float64bits(got.vals[i]), math.Float64bits(v))
		}
	}
}

// TestBinaryNilAndChained: nil estimators cost one byte, and several
// estimators concatenated in one buffer decode in sequence — the layout
// fleet frames use for the explicit estimator section.
func TestBinaryNilAndChained(t *testing.T) {
	ests := []Estimator{NewExact(), nil, MustGK(0.05)}
	ests[0].Insert(1)
	ests[2].Insert(2)
	var buf []byte
	var err error
	for _, est := range ests {
		if buf, err = AppendBinary(buf, est); err != nil {
			t.Fatal(err)
		}
	}
	rest := buf
	for i, want := range ests {
		var got Estimator
		if got, rest, err = DecodeBinary(rest); err != nil {
			t.Fatalf("estimator %d: %v", i, err)
		}
		if (got == nil) != (want == nil) {
			t.Fatalf("estimator %d: nil-ness mismatch", i)
		}
		if want != nil && got.Count() != want.Count() {
			t.Fatalf("estimator %d: count %d, want %d", i, got.Count(), want.Count())
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

// TestBinaryDecodeRejectsCorrupt: truncations and absurd counts must fail
// with an error, never panic or allocate unboundedly.
func TestBinaryDecodeRejectsCorrupt(t *testing.T) {
	e := NewExact()
	for i := 0; i < 100; i++ {
		e.Insert(float64(i))
	}
	data, err := AppendBinary(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		if _, _, err := DecodeBinary(data[:cut]); err == nil && cut < len(data) {
			// Short prefixes may still parse as a smaller valid payload only
			// if the count happens to fit; a nil-tag single byte is valid.
			if cut != 1 {
				t.Errorf("truncation at %d decoded without error", cut)
			}
		}
	}
	if _, _, err := DecodeBinary([]byte{binExact, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Error("absurd count accepted")
	}
	if _, _, err := DecodeBinary([]byte{99}); err == nil {
		t.Error("unknown tag accepted")
	}
}
