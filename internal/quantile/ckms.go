package quantile

import (
	"fmt"
	"math"
	"sort"
)

// Target is one quantile the CKMS sketch answers with guaranteed precision:
// Query(Quantile) has rank error at most Epsilon·n.
type Target struct {
	Quantile float64
	Epsilon  float64
}

// TrackedTargets are the paper's three quantiles at 0.5% rank error — the
// natural CKMS configuration for fingerprinting, since only these three
// quantiles are ever queried (§3.2).
func TrackedTargets() []Target {
	return []Target{
		{Quantile: 0.25, Epsilon: 0.005},
		{Quantile: 0.50, Epsilon: 0.005},
		{Quantile: 0.95, Epsilon: 0.005},
	}
}

// CKMS is the Cormode–Korn–Muthukrishnan–Srivastava sketch for *targeted*
// quantiles: unlike the uniform-error GK sketch it concentrates its memory
// budget around the quantiles that will actually be queried, which is
// exactly the fingerprinting workload (three fixed quantiles per metric).
type CKMS struct {
	targets []Target
	tuples  []ckmsTuple
	n       int
	buf     []float64
}

type ckmsTuple struct {
	v     float64
	g     int
	delta int
}

// ckmsBufSize is how many inserts are buffered before a merge pass.
const ckmsBufSize = 512

// NewCKMS returns a sketch answering the given targets within their
// epsilons.
func NewCKMS(targets []Target) (*CKMS, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("quantile: CKMS needs at least one target")
	}
	for _, t := range targets {
		if t.Quantile < 0 || t.Quantile > 1 {
			return nil, fmt.Errorf("quantile: target quantile %v out of [0,1]", t.Quantile)
		}
		if t.Epsilon <= 0 || t.Epsilon >= 1 {
			return nil, fmt.Errorf("quantile: target epsilon %v out of (0,1)", t.Epsilon)
		}
	}
	cp := append([]Target(nil), targets...)
	return &CKMS{targets: cp, buf: make([]float64, 0, ckmsBufSize)}, nil
}

// MustCKMS is NewCKMS for statically-valid targets; it panics on error.
func MustCKMS(targets []Target) *CKMS {
	s, err := NewCKMS(targets)
	if err != nil {
		panic(err)
	}
	return s
}

// invariant is the CKMS targeted-quantile error function f(r, n): the
// maximum span a tuple covering rank r may have.
func (s *CKMS) invariant(r float64, n int) float64 {
	m := math.Inf(1)
	fn := float64(n)
	for _, t := range s.targets {
		var f float64
		if r < t.Quantile*fn {
			f = 2 * t.Epsilon * (fn - r) / (1 - t.Quantile)
		} else {
			f = 2 * t.Epsilon * r / t.Quantile
		}
		if f < m {
			m = f
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Insert adds one observation.
func (s *CKMS) Insert(v float64) {
	s.buf = append(s.buf, v)
	if len(s.buf) >= ckmsBufSize {
		s.flush()
	}
}

// InsertBatch bulk-appends the batch to the insert buffer and runs at most
// one merge pass for the whole batch — the amortized alternative to the
// per-value path, which flushes every ckmsBufSize insertions. A flush over
// a larger buffer is still one sort + one linear merge, so deferring it
// across the batch only helps.
func (s *CKMS) InsertBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	s.buf = append(s.buf, vs...)
	if len(s.buf) >= ckmsBufSize {
		s.flush()
	}
}

// InsertSortedBatch merges an ascending batch straight into the tuple list,
// skipping the buffer (and its sort) entirely. Any buffered values are
// flushed first so stream order is preserved up to the batch.
func (s *CKMS) InsertSortedBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	s.flush()
	s.mergeSorted(vs)
}

// flush merges the buffered values into the tuple list and compresses.
func (s *CKMS) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	s.mergeSorted(s.buf)
	s.buf = s.buf[:0]
}

// mergeSorted folds a sorted ascending batch into the tuple list in one
// linear pass and compresses. The batch is read-only.
func (s *CKMS) mergeSorted(vals []float64) {
	merged := make([]ckmsTuple, 0, len(s.tuples)+len(vals))
	bi := 0
	r := 0.0
	for _, t := range s.tuples {
		for bi < len(vals) && vals[bi] <= t.v {
			delta := 0
			if len(merged) > 0 { // not the new minimum
				delta = int(s.invariant(r, s.n)) - 1
				if delta < 0 {
					delta = 0
				}
			}
			merged = append(merged, ckmsTuple{v: vals[bi], g: 1, delta: delta})
			s.n++
			r++
			bi++
		}
		merged = append(merged, t)
		r += float64(t.g)
	}
	for bi < len(vals) {
		// Values beyond the current maximum anchor the new max: delta 0.
		merged = append(merged, ckmsTuple{v: vals[bi], g: 1, delta: 0})
		s.n++
		bi++
	}
	s.tuples = merged
	s.compress()
}

// compress merges adjacent tuples within the invariant budget.
func (s *CKMS) compress() {
	if len(s.tuples) < 3 {
		return
	}
	// Walk from the tail, tracking the rank at each position.
	r := 0.0
	ranks := make([]float64, len(s.tuples))
	for i, t := range s.tuples {
		ranks[i] = r
		r += float64(t.g)
	}
	for i := len(s.tuples) - 2; i >= 1; i-- {
		t, next := s.tuples[i], s.tuples[i+1]
		if float64(t.g+next.g+next.delta) <= s.invariant(ranks[i], s.n) {
			s.tuples[i+1].g += t.g
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
		}
	}
}

// Query returns the q-th quantile estimate.
func (s *CKMS) Query(q float64) (float64, error) {
	s.flush()
	if s.n == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v out of [0,1]", q)
	}
	rank := q * float64(s.n)
	bound := rank + s.invariant(rank, s.n)/2
	rmin := 0.0
	for i, t := range s.tuples {
		rmin += float64(t.g)
		if rmin+float64(t.delta) > bound {
			if i == 0 {
				return t.v, nil
			}
			return s.tuples[i-1].v, nil
		}
	}
	return s.tuples[len(s.tuples)-1].v, nil
}

// Merge absorbs another CKMS sketch by re-inserting its buffered values and
// its tuples weighted by coverage. Estimates stay within the combined error
// budget; results are not bit-identical across shardings.
func (s *CKMS) Merge(src Estimator) error {
	o, ok := src.(*CKMS)
	if !ok {
		return fmt.Errorf("quantile: cannot merge %T into *CKMS", src)
	}
	s.InsertBatch(o.buf)
	if len(o.tuples) == 0 {
		return nil
	}
	// The source tuples are sorted ascending; their g-weighted expansion is
	// a sorted batch that merges in one pass.
	expanded := make([]float64, 0, o.n)
	for _, t := range o.tuples {
		for i := 0; i < t.g; i++ {
			expanded = append(expanded, t.v)
		}
	}
	s.InsertSortedBatch(expanded)
	return nil
}

// Count reports the number of observations inserted.
func (s *CKMS) Count() int { return s.n + len(s.buf) }

// Reset discards all state.
func (s *CKMS) Reset() {
	s.n = 0
	s.tuples = s.tuples[:0]
	s.buf = s.buf[:0]
}

// TupleCount exposes the sketch size for memory benchmarks (flushing any
// buffered inserts first).
func (s *CKMS) TupleCount() int {
	s.flush()
	return len(s.tuples)
}

var _ Estimator = (*CKMS)(nil)
