package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestNewCKMSValidation(t *testing.T) {
	if _, err := NewCKMS(nil); err == nil {
		t.Fatal("want empty-targets error")
	}
	if _, err := NewCKMS([]Target{{Quantile: -0.1, Epsilon: 0.01}}); err == nil {
		t.Fatal("want quantile range error")
	}
	if _, err := NewCKMS([]Target{{Quantile: 0.5, Epsilon: 0}}); err == nil {
		t.Fatal("want epsilon range error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCKMS should panic on bad targets")
		}
	}()
	MustCKMS(nil)
}

func TestCKMSEmptyAndRange(t *testing.T) {
	s := MustCKMS(TrackedTargets())
	if _, err := s.Query(0.5); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Query(-1); err == nil {
		t.Fatal("want range error")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestCKMSTargetedErrorBound(t *testing.T) {
	for _, gen := range []struct {
		name string
		next func(*rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64() }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
	} {
		t.Run(gen.name, func(t *testing.T) {
			const n = 50000
			rng := rand.New(rand.NewSource(3))
			s := MustCKMS(TrackedTargets())
			data := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := gen.next(rng)
				s.Insert(v)
				data = append(data, v)
			}
			sort.Float64s(data)
			for _, tgt := range TrackedTargets() {
				v, err := s.Query(tgt.Quantile)
				if err != nil {
					t.Fatal(err)
				}
				if re := rankError(data, v, tgt.Quantile); re > tgt.Epsilon*float64(n)+1 {
					t.Errorf("q=%v: rank error %v exceeds eps*n=%v", tgt.Quantile, re, tgt.Epsilon*float64(n))
				}
			}
		})
	}
}

func TestCKMSMemorySublinear(t *testing.T) {
	s := MustCKMS(TrackedTargets())
	rng := rand.New(rand.NewSource(4))
	const n = 100000
	for i := 0; i < n; i++ {
		s.Insert(rng.Float64())
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
	if tc := s.TupleCount(); tc > n/20 {
		t.Fatalf("TupleCount = %d, not sublinear vs n=%d", tc, n)
	}
	s.Reset()
	if s.Count() != 0 || s.TupleCount() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCKMSMatchesExactOnTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	exact := NewExact()
	ck := MustCKMS(TrackedTargets())
	for i := 0; i < 30000; i++ {
		v := rng.NormFloat64()*10 + 100
		exact.Insert(v)
		ck.Insert(v)
	}
	for _, q := range TrackedQuantiles {
		ev, _ := exact.Query(q)
		cv, err := ck.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ev-cv) > 0.5 {
			t.Errorf("q=%v: exact %v vs ckms %v", q, ev, cv)
		}
	}
}

func TestCKMSSortedAndReversedInput(t *testing.T) {
	for name, gen := range map[string]func(i int) float64{
		"ascending":  func(i int) float64 { return float64(i) },
		"descending": func(i int) float64 { return float64(20000 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			s := MustCKMS(TrackedTargets())
			const n = 20000
			data := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := gen(i)
				s.Insert(v)
				data = append(data, v)
			}
			sort.Float64s(data)
			for _, tgt := range TrackedTargets() {
				v, err := s.Query(tgt.Quantile)
				if err != nil {
					t.Fatal(err)
				}
				if re := rankError(data, v, tgt.Quantile); re > tgt.Epsilon*float64(n)+1 {
					t.Errorf("q=%v: rank error %v", tgt.Quantile, re)
				}
			}
		})
	}
}

func TestCKMSWorksWithAggregatorInterface(t *testing.T) {
	var est Estimator = MustCKMS(TrackedTargets())
	for i := 1; i <= 1000; i++ {
		est.Insert(float64(i))
	}
	s, err := Summarize(est)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] < 480 || s[1] > 520 {
		t.Fatalf("median = %v", s[1])
	}
}
