package quantile

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// gobRound encodes an estimator through gob and decodes it into a fresh
// value of the same concrete type, as the fleet wire codec does.
func gobRound(t *testing.T, est Estimator) Estimator {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&est); err != nil {
		t.Fatalf("encode %T: %v", est, err)
	}
	var out Estimator
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", est, err)
	}
	return out
}

// encodeBytes is the byte-level fingerprint the commute property compares:
// two estimators with identical serialized state are identical for every
// observer, queries included.
func encodeBytes(t *testing.T, est Estimator) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&est); err != nil {
		t.Fatalf("encode %T: %v", est, err)
	}
	return buf.Bytes()
}

func init() {
	gob.Register(&Exact{})
	gob.Register(&GK{})
	gob.Register(&CKMS{})
	gob.Register(&Reservoir{})
}

// TestGobMergeCommute is the property the two-tier fleet pipeline rests on:
// serializing shard estimators, shipping them, and merging the decoded
// copies must equal merging the originals and serializing the result —
// gob roundtrips commute with Merge. Checked at the byte level (stronger
// than a query grid) across randomized stream splits for every estimator.
// The Reservoir is covered in its no-eviction regime here; eviction-regime
// determinism, which depends on the decode-time RNG reseed, is pinned by
// TestReservoirDecodedMergeDeterministic.
func TestGobMergeCommute(t *testing.T) {
	type maker struct {
		name string
		make func() Estimator
		vals int // per-shard stream length
	}
	makers := []maker{
		{"Exact", func() Estimator { return NewExact() }, 500},
		{"GK", func() Estimator {
			s, err := NewGK(0.01)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, 500},
		{"CKMS", func() Estimator {
			s, err := NewCKMS([]Target{{Quantile: 0.5, Epsilon: 0.01}, {Quantile: 0.95, Epsilon: 0.005}})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, 500},
		// Streams short enough that the reservoir never evicts: with no
		// randomness drawn, the roundtrip's RNG reseed cannot matter.
		{"Reservoir", func() Estimator {
			r, err := NewReservoir(2048, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			return r
		}, 500},
	}
	for _, m := range makers {
		t.Run(m.name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				rng := rand.New(rand.NewSource(int64(100 + trial)))
				a, b := m.make(), m.make()
				for i := 0; i < m.vals; i++ {
					a.Insert(rng.NormFloat64() * 10)
					b.Insert(rng.ExpFloat64())
				}

				// Path 1: merge the live originals, then serialize.
				direct := gobRound(t, a) // preserve a; Merge mutates the receiver
				if err := direct.(Merger).Merge(b); err != nil {
					t.Fatal(err)
				}

				// Path 2: roundtrip both shards first, then merge the copies.
				shipped := gobRound(t, a)
				if err := shipped.(Merger).Merge(gobRound(t, b)); err != nil {
					t.Fatal(err)
				}

				if got, want := encodeBytes(t, shipped), encodeBytes(t, direct); !bytes.Equal(got, want) {
					t.Fatalf("trial %d: roundtrip-then-merge differs from merge-then-roundtrip", trial)
				}
				if direct.Count() != a.Count()+b.Count() {
					t.Fatalf("trial %d: merged count %d, want %d", trial, direct.Count(), a.Count()+b.Count())
				}
				// The fingerprint equality must be visible to queries too.
				for _, q := range TrackedQuantiles {
					dv, err1 := direct.(Estimator).Query(q)
					sv, err2 := shipped.(Estimator).Query(q)
					if err1 != nil || err2 != nil || dv != sv {
						t.Fatalf("trial %d q=%v: direct %v (%v) vs shipped %v (%v)", trial, q, dv, err1, sv, err2)
					}
				}
			}
		})
	}
}

// TestReservoirDecodedMergeDeterministic pins the eviction-regime contract:
// the reservoir's RNG is reseeded deterministically from (K, N) on decode,
// so any two replicas that decode the same frames and merge them make
// identical eviction choices — the coordinator's merge is reproducible even
// though the sampler itself is randomized.
func TestReservoirDecodedMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() *Reservoir {
		r, err := NewReservoir(32, rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ { // far past capacity: eviction randomness in play
		a.Insert(rng.NormFloat64())
		b.Insert(rng.ExpFloat64())
	}
	run := func() []byte {
		ra := gobRound(t, a)
		if err := ra.(Merger).Merge(gobRound(t, b)); err != nil {
			t.Fatal(err)
		}
		return encodeBytes(t, ra)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two replicas merging identical decoded reservoirs diverged")
	}
}
