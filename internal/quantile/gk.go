package quantile

import (
	"fmt"
	"math"
	"sort"
)

// GK is the Greenwald–Khanna ε-approximate quantile sketch.
//
// After n insertions, Query(q) returns a value whose rank is within ε·n of
// the true rank ⌈q·n⌉, using O((1/ε)·log(εn)) stored tuples. This is the
// bounded-error streaming summarization the paper points to for scaling the
// per-metric datacenter summary beyond the point where exact computation is
// convenient (§3.2).
type GK struct {
	eps    float64
	n      int
	tuples []gkTuple // sorted ascending by v
	// compressEvery counts down insertions until the next compression.
	sinceCompress int
	// sortBuf and mergeBuf are batch-ingestion scratch, retained across
	// calls so steady-state batches allocate nothing.
	sortBuf  []float64
	mergeBuf []gkTuple
}

// gkTuple is one summary entry: value v covers g observations, and delta
// bounds the uncertainty of its maximum rank.
type gkTuple struct {
	v     float64
	g     int
	delta int
}

// NewGK returns a sketch with rank-error guarantee eps in (0, 1).
func NewGK(eps float64) (*GK, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("quantile: eps=%v out of (0,1)", eps)
	}
	return &GK{eps: eps}, nil
}

// MustGK is NewGK for statically-valid eps; it panics on error.
func MustGK(eps float64) *GK {
	s, err := NewGK(eps)
	if err != nil {
		panic(err)
	}
	return s
}

// Insert adds one observation to the sketch.
func (s *GK) Insert(v float64) {
	i := sort.Search(len(s.tuples), func(j int) bool { return s.tuples[j].v > v })
	delta := 0
	if i > 0 && i < len(s.tuples) {
		delta = int(math.Floor(2 * s.eps * float64(s.n)))
	}
	s.tuples = append(s.tuples, gkTuple{})
	copy(s.tuples[i+1:], s.tuples[i:])
	s.tuples[i] = gkTuple{v: v, g: 1, delta: delta}
	s.n++

	s.sinceCompress++
	if float64(s.sinceCompress) >= 1/(2*s.eps) {
		s.compress()
		s.sinceCompress = 0
	}
}

// InsertBatch sorts the batch into scratch and merges it in one pass. The
// per-value path compresses every 1/(2ε) insertions; the batch path runs
// at most one compression per batch instead, which is always safe — each
// value's delta is fixed from the stream length at its insertion point, and
// the ε·n budget only grows — so deferring compression trades transient
// memory for time without touching the error guarantee.
func (s *GK) InsertBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	s.sortBuf = append(s.sortBuf[:0], vs...)
	sort.Float64s(s.sortBuf)
	s.InsertSortedBatch(s.sortBuf)
}

// InsertSortedBatch merges an ascending batch into the tuple list in a
// single linear pass, assigning each value the same delta the per-value
// Insert would at that point of the stream, then schedules at most one
// compression for the whole batch.
func (s *GK) InsertSortedBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	if cap(s.mergeBuf) < len(s.tuples)+len(vs) {
		s.mergeBuf = make([]gkTuple, 0, len(s.tuples)+len(vs))
	}
	out := s.mergeBuf[:0]
	bi := 0
	for _, t := range s.tuples {
		// Insert places a value after any equal tuples (sort.Search for the
		// first strictly-greater tuple), so only strictly smaller batch
		// values go before t.
		for bi < len(vs) && vs[bi] < t.v {
			delta := 0
			if len(out) > 0 { // not the new minimum
				delta = int(math.Floor(2 * s.eps * float64(s.n)))
			}
			out = append(out, gkTuple{v: vs[bi], g: 1, delta: delta})
			s.n++
			bi++
		}
		out = append(out, t)
	}
	for bi < len(vs) {
		// At or past the current maximum: delta 0, anchoring the new max.
		out = append(out, gkTuple{v: vs[bi], g: 1, delta: 0})
		s.n++
		bi++
	}
	// Swap the merge scratch in as the live tuple list and retain the old
	// backing array for the next batch.
	s.tuples, s.mergeBuf = out, s.tuples[:0]

	s.sinceCompress += len(vs)
	if float64(s.sinceCompress) >= 1/(2*s.eps) {
		s.compress()
		s.sinceCompress = 0
	}
}

// compress merges adjacent tuples whose combined span still satisfies the
// ε·n error budget, bounding memory.
func (s *GK) compress() {
	if len(s.tuples) < 3 {
		return
	}
	budget := int(math.Floor(2 * s.eps * float64(s.n)))
	// Never merge away the first tuple (it anchors the minimum); iterate
	// from the tail so index arithmetic stays simple under deletion.
	for i := len(s.tuples) - 2; i >= 1; i-- {
		t, next := s.tuples[i], s.tuples[i+1]
		if t.g+next.g+next.delta <= budget {
			s.tuples[i+1].g += t.g
			s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
		}
	}
}

// Query returns an ε-approximate q-th quantile of the inserted stream.
func (s *GK) Query(q float64) (float64, error) {
	if s.n == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v out of [0,1]", q)
	}
	rank := int(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	margin := int(math.Ceil(s.eps * float64(s.n)))
	rmin := 0
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if rank-rmin <= margin && rmax-rank <= margin {
			return t.v, nil
		}
		_ = i
	}
	return s.tuples[len(s.tuples)-1].v, nil
}

// Merge absorbs another GK sketch by re-inserting its tuples weighted by
// their coverage g. The merged sketch remains a valid ε'-summary with
// ε' ≤ εa+εb; unlike Exact.Merge the result is not bit-identical across
// different shardings, so sharded aggregation over GK trades exactness for
// memory just like the underlying sketch does.
func (s *GK) Merge(src Estimator) error {
	o, ok := src.(*GK)
	if !ok {
		return fmt.Errorf("quantile: cannot merge %T into *GK", src)
	}
	if len(o.tuples) == 0 {
		return nil
	}
	// The source tuples are sorted ascending, so their g-weighted expansion
	// is a ready-made sorted batch: one merge pass instead of one
	// tuple-insertion per covered observation.
	buf := s.sortBuf[:0]
	for _, t := range o.tuples {
		for i := 0; i < t.g; i++ {
			buf = append(buf, t.v)
		}
	}
	s.sortBuf = buf
	s.InsertSortedBatch(buf)
	return nil
}

// Count reports the number of observations inserted.
func (s *GK) Count() int { return s.n }

// Reset discards all state.
func (s *GK) Reset() {
	s.n = 0
	s.tuples = s.tuples[:0]
	s.sinceCompress = 0
}

// TupleCount exposes the sketch size for memory-scaling benchmarks.
func (s *GK) TupleCount() int { return len(s.tuples) }

// Epsilon returns the configured rank-error guarantee.
func (s *GK) Epsilon() float64 { return s.eps }

var _ Estimator = (*GK)(nil)
var _ Estimator = (*Exact)(nil)
var _ Merger = (*GK)(nil)
var _ Merger = (*Exact)(nil)
var _ Merger = (*CKMS)(nil)
var _ Merger = (*Reservoir)(nil)
