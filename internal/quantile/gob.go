package quantile

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
)

// Gob support for every estimator, so a Monitor checkpoint can persist any
// estimator configuration, not just the default exact one. Each type encodes
// through an exported mirror struct (the working representations keep their
// fields unexported) and validates on decode, mirroring the defensive
// pattern of metrics' track/catalog gob codecs.
//
// Decoding reconstructs an estimator whose queries are indistinguishable
// from the original's, with one documented exception: Reservoir cannot
// persist its *rand.Rand, so a decoded reservoir reseeds deterministically
// from its counters — the retained sample is preserved exactly, but future
// eviction decisions draw from a different random stream than the original
// process would have.

type gobExact struct {
	Vals []float64
}

// GobEncode serializes the observation multiset.
func (e *Exact) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobExact{Vals: e.vals}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the observation multiset; quantiles re-sort lazily.
func (e *Exact) GobDecode(p []byte) error {
	var g gobExact
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	e.vals = g.Vals
	e.sorted = false
	return nil
}

type gobGK struct {
	Eps           float64
	N             int
	V             []float64
	G             []int
	Delta         []int
	SinceCompress int
}

// GobEncode serializes the sketch tuples column-wise.
func (s *GK) GobEncode() ([]byte, error) {
	g := gobGK{Eps: s.eps, N: s.n, SinceCompress: s.sinceCompress}
	for _, t := range s.tuples {
		g.V = append(g.V, t.v)
		g.G = append(g.G, t.g)
		g.Delta = append(g.Delta, t.delta)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the sketch, validating the tuple columns agree.
func (s *GK) GobDecode(p []byte) error {
	var g gobGK
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	if g.Eps <= 0 || g.Eps >= 1 {
		return fmt.Errorf("quantile: decoded GK eps=%v out of (0,1)", g.Eps)
	}
	if len(g.V) != len(g.G) || len(g.V) != len(g.Delta) {
		return fmt.Errorf("quantile: decoded GK tuple columns disagree (%d/%d/%d)", len(g.V), len(g.G), len(g.Delta))
	}
	if g.N < 0 {
		return fmt.Errorf("quantile: decoded GK count %d negative", g.N)
	}
	s.eps = g.Eps
	s.n = g.N
	s.sinceCompress = g.SinceCompress
	s.tuples = s.tuples[:0]
	for i := range g.V {
		s.tuples = append(s.tuples, gkTuple{v: g.V[i], g: g.G[i], delta: g.Delta[i]})
	}
	return nil
}

type gobCKMS struct {
	Targets []Target
	N       int
	V       []float64
	G       []int
	Delta   []int
	Buf     []float64
}

// GobEncode serializes the targets, tuples and the unmerged insert buffer.
func (s *CKMS) GobEncode() ([]byte, error) {
	g := gobCKMS{Targets: s.targets, N: s.n, Buf: s.buf}
	for _, t := range s.tuples {
		g.V = append(g.V, t.v)
		g.G = append(g.G, t.g)
		g.Delta = append(g.Delta, t.delta)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the sketch, validating targets and tuple columns.
func (s *CKMS) GobDecode(p []byte) error {
	var g gobCKMS
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	if _, err := NewCKMS(g.Targets); err != nil {
		return fmt.Errorf("quantile: decoded CKMS: %w", err)
	}
	if len(g.V) != len(g.G) || len(g.V) != len(g.Delta) {
		return fmt.Errorf("quantile: decoded CKMS tuple columns disagree (%d/%d/%d)", len(g.V), len(g.G), len(g.Delta))
	}
	if g.N < 0 {
		return fmt.Errorf("quantile: decoded CKMS count %d negative", g.N)
	}
	s.targets = append([]Target(nil), g.Targets...)
	s.n = g.N
	s.buf = g.Buf
	if s.buf == nil {
		s.buf = make([]float64, 0, ckmsBufSize)
	}
	s.tuples = s.tuples[:0]
	for i := range g.V {
		s.tuples = append(s.tuples, ckmsTuple{v: g.V[i], g: g.G[i], delta: g.Delta[i]})
	}
	return nil
}

type gobReservoir struct {
	K    int
	N    int
	Vals []float64
}

// GobEncode serializes the sample and counters. The random source is not
// persisted (see the package comment above).
func (r *Reservoir) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobReservoir{K: r.k, N: r.n, Vals: r.vals}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores the sample and reseeds the eviction source
// deterministically from the counters.
func (r *Reservoir) GobDecode(p []byte) error {
	var g gobReservoir
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&g); err != nil {
		return err
	}
	if g.K <= 0 {
		return fmt.Errorf("quantile: decoded reservoir size %d must be positive", g.K)
	}
	if g.N < 0 || len(g.Vals) > g.K {
		return fmt.Errorf("quantile: decoded reservoir holds %d values for size %d, count %d", len(g.Vals), g.K, g.N)
	}
	r.k = g.K
	r.n = g.N
	r.vals = g.Vals
	if r.vals == nil {
		r.vals = make([]float64, 0, g.K)
	}
	r.rng = rand.New(rand.NewSource(int64(g.K)<<32 ^ int64(g.N)))
	return nil
}
