package quantile

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// roundTrip gob-encodes est into a freshly allocated value of the same type
// and returns it as an Estimator.
func roundTrip(t *testing.T, est Estimator) Estimator {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(est); err != nil {
		t.Fatalf("encode %T: %v", est, err)
	}
	var out Estimator
	switch est.(type) {
	case *Exact:
		out = &Exact{}
	case *GK:
		out = &GK{}
	case *CKMS:
		out = &CKMS{}
	case *Reservoir:
		out = &Reservoir{}
	default:
		t.Fatalf("unhandled estimator %T", est)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatalf("decode %T: %v", est, err)
	}
	return out
}

func TestEstimatorGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ests := map[string]Estimator{
		"exact": NewExact(),
		"gk":    MustGK(0.01),
		"ckms":  MustCKMS(TrackedTargets()),
	}
	res, err := NewReservoir(64, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ests["reservoir"] = res

	for name, est := range ests {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 1500; i++ {
				est.Insert(rng.NormFloat64()*10 + 100)
			}
			got := roundTrip(t, est)
			if got.Count() != est.Count() {
				t.Fatalf("count %d after round trip, want %d", got.Count(), est.Count())
			}
			for _, q := range TrackedQuantiles {
				want, err := est.Query(q)
				if err != nil {
					t.Fatalf("query original q=%v: %v", q, err)
				}
				have, err := got.Query(q)
				if err != nil {
					t.Fatalf("query decoded q=%v: %v", q, err)
				}
				if have != want {
					t.Fatalf("q=%v: decoded %v, original %v", q, have, want)
				}
			}
			// The decoded estimator must remain usable: insert more and
			// re-query without error.
			got.Insert(42)
			if _, err := got.Query(0.5); err != nil {
				t.Fatalf("query after post-decode insert: %v", err)
			}
		})
	}
}

func TestEstimatorGobEmptyRoundTrip(t *testing.T) {
	for _, est := range []Estimator{NewExact(), MustGK(0.05), MustCKMS(TrackedTargets())} {
		got := roundTrip(t, est)
		if got.Count() != 0 {
			t.Fatalf("%T: empty round trip has count %d", est, got.Count())
		}
		if _, err := got.Query(0.5); err == nil {
			t.Fatalf("%T: query on empty decoded estimator should error", est)
		}
	}
}

func TestGKGobRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobGK{Eps: 2, N: 1, V: []float64{1}, G: []int{1}, Delta: []int{0}}); err != nil {
		t.Fatal(err)
	}
	var s GK
	if err := s.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoding GK with eps=2 should fail")
	}
}

func TestReservoirGobRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobReservoir{K: 0, N: 1}); err != nil {
		t.Fatal(err)
	}
	var r Reservoir
	if err := r.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoding reservoir with k=0 should fail")
	}
}
