package quantile

import (
	"math"
	"math/rand"
	"testing"
)

// TestExactMergeBitIdentical is the determinism guarantee sharded epoch
// aggregation rests on: merging exact shards yields byte-identical queries
// to single-stream insertion, for any split and any shard order.
func TestExactMergeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
	}
	serial := NewExact()
	for _, v := range vals {
		serial.Insert(v)
	}
	for _, shards := range []int{2, 3, 7} {
		parts := make([]*Exact, shards)
		for i := range parts {
			parts[i] = NewExact()
		}
		for i, v := range vals {
			parts[i%shards].Insert(v)
		}
		// Merge in reverse order to show shard order is irrelevant.
		merged := parts[shards-1]
		for i := shards - 2; i >= 0; i-- {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != serial.Count() {
			t.Fatalf("shards=%d: Count = %d, want %d", shards, merged.Count(), serial.Count())
		}
		for _, q := range TrackedQuantiles {
			want, err := serial.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := merged.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("shards=%d q=%v: %v != %v (must be bit-identical)", shards, q, got, want)
			}
		}
	}
}

func TestExactMergeLeavesSourceIntact(t *testing.T) {
	a, b := NewExact(), NewExact()
	a.Insert(1)
	b.Insert(2)
	b.Insert(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || b.Count() != 2 {
		t.Fatalf("counts after merge: a=%d b=%d", a.Count(), b.Count())
	}
}

func TestExactMergeTypeMismatch(t *testing.T) {
	e := NewExact()
	if err := e.Merge(MustGK(0.01)); err == nil {
		t.Fatal("want type-mismatch error merging GK into Exact")
	}
}

// TestSketchMergesApproximate checks each sketch estimator's merge keeps
// quantile estimates within a loose tolerance of the exact answer.
func TestSketchMergesApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 4000)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 50
	}
	exact := NewExact()
	for _, v := range vals {
		exact.Insert(v)
	}
	mk := map[string]func() Estimator{
		"gk":   func() Estimator { return MustGK(0.01) },
		"ckms": func() Estimator { return MustCKMS(TrackedTargets()) },
		"reservoir": func() Estimator {
			r, err := NewReservoir(1024, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
	}
	for name, newEst := range mk {
		a, b := newEst(), newEst()
		for i, v := range vals {
			if i%2 == 0 {
				a.Insert(v)
			} else {
				b.Insert(v)
			}
		}
		if err := a.(Merger).Merge(b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Count() != len(vals) {
			t.Fatalf("%s: Count = %d, want %d", name, a.Count(), len(vals))
		}
		for _, q := range TrackedQuantiles {
			want, _ := exact.Query(q)
			got, err := a.Query(q)
			if err != nil {
				t.Fatalf("%s q=%v: %v", name, q, err)
			}
			// Rank-error sketches over a heavy-tailed stream: allow a
			// generous value tolerance (relative to the exact answer).
			if math.Abs(got-want) > 0.15*want+1 {
				t.Fatalf("%s q=%v: got %v, exact %v", name, q, got, want)
			}
		}
	}
}

func TestMergeEmptySource(t *testing.T) {
	a, b := NewExact(), NewExact()
	a.Insert(42)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 {
		t.Fatalf("Count = %d after merging empty source", a.Count())
	}
}
