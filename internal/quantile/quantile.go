// Package quantile provides quantile estimators for summarizing a
// performance metric across all machines of a datacenter (§3.2 of the
// paper).
//
// The paper tracks three quantiles per metric (25th, 50th, 95th) and notes
// that while their several-hundred-machine installation allowed exact
// computation, bounded-error streaming estimators [Guha & McGregor] let the
// approach scale to installations of thousands of machines. This package
// offers both:
//
//   - Exact: collects all observations, answers exactly.
//   - GK: the Greenwald–Khanna ε-approximate streaming sketch whose memory
//     is O((1/ε)·log(εn)) regardless of the number of machines.
//   - Reservoir: fixed-size uniform sample, the cheapest fallback.
package quantile

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// TrackedQuantiles are the per-metric quantiles the paper's fingerprints
// track: 25th percentile, median, and 95th percentile.
var TrackedQuantiles = []float64{0.25, 0.50, 0.95}

// ErrNoData is returned when querying an estimator that has seen no values.
var ErrNoData = errors.New("quantile: no observations")

// Estimator summarizes a stream of observations and answers quantile
// queries with q in [0, 1].
type Estimator interface {
	// Insert adds one observation.
	Insert(v float64)
	// InsertBatch adds a batch of observations, equivalent to calling
	// Insert on each value in order: byte-identical for Exact (only the
	// value multiset matters), within the estimator's error bound for the
	// sketches (which may schedule compression differently across the
	// batch). The batch slice is not retained.
	InsertBatch(vs []float64)
	// InsertSortedBatch is InsertBatch for a batch the caller guarantees
	// is sorted ascending, letting sketch implementations skip their own
	// sort and merge in a single pass. Behavior is undefined (but never a
	// panic or corruption) if the batch is not actually sorted.
	InsertSortedBatch(vs []float64)
	// Query returns an estimate of the q-th quantile of everything
	// inserted so far.
	Query(q float64) (float64, error)
	// Count reports how many observations have been inserted.
	Count() int
	// Reset discards all state so the estimator can be reused for the
	// next aggregation epoch.
	Reset()
}

// Merger is the optional capability of an Estimator to absorb the state of
// a sibling estimator — the primitive behind sharded cross-machine
// aggregation, where each worker feeds its own estimator and the shards are
// merged before the epoch's quantiles are read. Merging an Exact into an
// Exact is lossless (the union multiset is preserved, so queries are
// byte-identical to single-stream insertion in any shard order); the sketch
// estimators merge by weighted re-insertion, which keeps estimates valid
// but not bit-reproducible across different shard counts.
type Merger interface {
	// Merge absorbs src's observations into the receiver. src is left
	// unmodified; callers typically Reset it afterwards.
	Merge(src Estimator) error
}

// Exact is an Estimator that stores every observation and answers queries
// exactly (linear-interpolation quantiles). Suitable for hundreds of
// machines per epoch, as in the paper's case study.
type Exact struct {
	vals   []float64
	sorted bool
	// keys and keyTmp are radix-sort scratch (see sortVals), retained so a
	// reused estimator sorts without allocating.
	keys   []uint64
	keyTmp []uint64
}

// radixMinLen is the value count above which sortVals switches from the
// comparison sort to the LSD radix sort. Below it the O(n log n) sort's
// lower constant wins; above it the radix sort's 8 linear passes do.
const radixMinLen = 256

// sortVals sorts the observations ascending. Large sets take an LSD radix
// sort over the order-preserving bit mapping (floatToOrdered): one pass
// builds all eight digit histograms, then up to eight stable counting-sort
// passes — skipping any digit all keys share, which for metric columns
// clustered around a common level is most of the high bytes. The result is
// identical to sort.Float64s for finite values; a batch containing NaN
// falls back to the comparison sort so NaN placement matches exactly.
func (e *Exact) sortVals() {
	if e.sorted {
		return
	}
	e.sorted = true
	n := len(e.vals)
	if n < radixMinLen {
		sort.Float64s(e.vals)
		return
	}
	if cap(e.keys) < n {
		e.keys = make([]uint64, n)
		e.keyTmp = make([]uint64, n)
	}
	keys := e.keys[:n]
	for i, v := range e.vals {
		if v != v {
			sort.Float64s(e.vals)
			return
		}
		keys[i] = floatToOrdered(v)
	}
	var counts [8][256]int
	for _, k := range keys {
		counts[0][k&0xff]++
		counts[1][(k>>8)&0xff]++
		counts[2][(k>>16)&0xff]++
		counts[3][(k>>24)&0xff]++
		counts[4][(k>>32)&0xff]++
		counts[5][(k>>40)&0xff]++
		counts[6][(k>>48)&0xff]++
		counts[7][(k>>56)&0xff]++
	}
	first := keys[0]
	src, dst := keys, e.keyTmp[:n]
	for d := uint(0); d < 8; d++ {
		c := &counts[d]
		if c[(first>>(8*d))&0xff] == n {
			continue // every key shares this digit; the pass is a no-op
		}
		sum := 0
		for b := 0; b < 256; b++ {
			cnt := c[b]
			c[b] = sum
			sum += cnt
		}
		for _, k := range src {
			b := (k >> (8 * d)) & 0xff
			dst[c[b]] = k
			c[b]++
		}
		src, dst = dst, src
	}
	for i, k := range src {
		e.vals[i] = orderedToFloat(k)
	}
}

// NewExact returns an empty exact estimator.
func NewExact() *Exact { return &Exact{} }

// Insert adds one observation.
func (e *Exact) Insert(v float64) {
	e.vals = append(e.vals, v)
	e.sorted = false
}

// InsertBatch bulk-appends the batch; sorting is deferred to the next
// query, so ingesting a whole metric column costs one copy instead of one
// call per cell.
func (e *Exact) InsertBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	e.vals = append(e.vals, vs...)
	e.sorted = false
}

// InsertSortedBatch appends an already-sorted batch. Landing in an empty
// estimator the sorted flag is kept, so the next query skips its sort.
func (e *Exact) InsertSortedBatch(vs []float64) {
	if len(vs) == 0 {
		return
	}
	wasEmpty := len(e.vals) == 0
	e.vals = append(e.vals, vs...)
	e.sorted = wasEmpty
}

// Query returns the exact q-th quantile.
func (e *Exact) Query(q float64) (float64, error) {
	if len(e.vals) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v out of [0,1]", q)
	}
	e.sortVals()
	n := len(e.vals)
	if n == 1 {
		return e.vals[0], nil
	}
	r := q * float64(n-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return e.vals[lo], nil
	}
	frac := r - float64(lo)
	return e.vals[lo]*(1-frac) + e.vals[hi]*frac, nil
}

// Count reports the number of observations.
func (e *Exact) Count() int { return len(e.vals) }

// Reset discards all observations, retaining capacity.
func (e *Exact) Reset() {
	e.vals = e.vals[:0]
	e.sorted = false
}

// Merge absorbs another exact estimator's observations. The result is
// indistinguishable from having inserted both streams into one estimator,
// so sharded exact aggregation is deterministic regardless of how the
// stream was split.
func (e *Exact) Merge(src Estimator) error {
	o, ok := src.(*Exact)
	if !ok {
		return fmt.Errorf("quantile: cannot merge %T into *Exact", src)
	}
	if len(o.vals) == 0 {
		return nil
	}
	e.vals = append(e.vals, o.vals...)
	e.sorted = false
	return nil
}

// Values returns the observations sorted ascending. The returned slice is
// owned by the estimator and must not be modified.
func (e *Exact) Values() []float64 {
	e.sortVals()
	return e.vals
}

// RawValues returns the observations without sorting them first (unlike
// Values, which sorts in place): insertion order is preserved as long as no
// query has run. The slice aliases the estimator's storage — read-only, and
// valid only until the next mutating call. Wire codecs use it to compare
// estimator content against the raw rows it was ingested from.
func (e *Exact) RawValues() []float64 { return e.vals }

// Summarize inserts nothing and reads the TrackedQuantiles (25/50/95) out of
// est in order. It is the one-line helper the metric store uses per epoch.
func Summarize(est Estimator) ([3]float64, error) {
	var out [3]float64
	for i, q := range TrackedQuantiles {
		v, err := est.Query(q)
		if err != nil {
			return out, err
		}
		out[i] = v
	}
	return out, nil
}
