// Package quantile provides quantile estimators for summarizing a
// performance metric across all machines of a datacenter (§3.2 of the
// paper).
//
// The paper tracks three quantiles per metric (25th, 50th, 95th) and notes
// that while their several-hundred-machine installation allowed exact
// computation, bounded-error streaming estimators [Guha & McGregor] let the
// approach scale to installations of thousands of machines. This package
// offers both:
//
//   - Exact: collects all observations, answers exactly.
//   - GK: the Greenwald–Khanna ε-approximate streaming sketch whose memory
//     is O((1/ε)·log(εn)) regardless of the number of machines.
//   - Reservoir: fixed-size uniform sample, the cheapest fallback.
package quantile

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// TrackedQuantiles are the per-metric quantiles the paper's fingerprints
// track: 25th percentile, median, and 95th percentile.
var TrackedQuantiles = []float64{0.25, 0.50, 0.95}

// ErrNoData is returned when querying an estimator that has seen no values.
var ErrNoData = errors.New("quantile: no observations")

// Estimator summarizes a stream of observations and answers quantile
// queries with q in [0, 1].
type Estimator interface {
	// Insert adds one observation.
	Insert(v float64)
	// Query returns an estimate of the q-th quantile of everything
	// inserted so far.
	Query(q float64) (float64, error)
	// Count reports how many observations have been inserted.
	Count() int
	// Reset discards all state so the estimator can be reused for the
	// next aggregation epoch.
	Reset()
}

// Merger is the optional capability of an Estimator to absorb the state of
// a sibling estimator — the primitive behind sharded cross-machine
// aggregation, where each worker feeds its own estimator and the shards are
// merged before the epoch's quantiles are read. Merging an Exact into an
// Exact is lossless (the union multiset is preserved, so queries are
// byte-identical to single-stream insertion in any shard order); the sketch
// estimators merge by weighted re-insertion, which keeps estimates valid
// but not bit-reproducible across different shard counts.
type Merger interface {
	// Merge absorbs src's observations into the receiver. src is left
	// unmodified; callers typically Reset it afterwards.
	Merge(src Estimator) error
}

// Exact is an Estimator that stores every observation and answers queries
// exactly (linear-interpolation quantiles). Suitable for hundreds of
// machines per epoch, as in the paper's case study.
type Exact struct {
	vals   []float64
	sorted bool
}

// NewExact returns an empty exact estimator.
func NewExact() *Exact { return &Exact{} }

// Insert adds one observation.
func (e *Exact) Insert(v float64) {
	e.vals = append(e.vals, v)
	e.sorted = false
}

// Query returns the exact q-th quantile.
func (e *Exact) Query(q float64) (float64, error) {
	if len(e.vals) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v out of [0,1]", q)
	}
	if !e.sorted {
		sort.Float64s(e.vals)
		e.sorted = true
	}
	n := len(e.vals)
	if n == 1 {
		return e.vals[0], nil
	}
	r := q * float64(n-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return e.vals[lo], nil
	}
	frac := r - float64(lo)
	return e.vals[lo]*(1-frac) + e.vals[hi]*frac, nil
}

// Count reports the number of observations.
func (e *Exact) Count() int { return len(e.vals) }

// Reset discards all observations, retaining capacity.
func (e *Exact) Reset() {
	e.vals = e.vals[:0]
	e.sorted = false
}

// Merge absorbs another exact estimator's observations. The result is
// indistinguishable from having inserted both streams into one estimator,
// so sharded exact aggregation is deterministic regardless of how the
// stream was split.
func (e *Exact) Merge(src Estimator) error {
	o, ok := src.(*Exact)
	if !ok {
		return fmt.Errorf("quantile: cannot merge %T into *Exact", src)
	}
	if len(o.vals) == 0 {
		return nil
	}
	e.vals = append(e.vals, o.vals...)
	e.sorted = false
	return nil
}

// Values returns the observations sorted ascending. The returned slice is
// owned by the estimator and must not be modified.
func (e *Exact) Values() []float64 {
	if !e.sorted {
		sort.Float64s(e.vals)
		e.sorted = true
	}
	return e.vals
}

// Summarize inserts nothing and reads the TrackedQuantiles (25/50/95) out of
// est in order. It is the one-line helper the metric store uses per epoch.
func Summarize(est Estimator) ([3]float64, error) {
	var out [3]float64
	for i, q := range TrackedQuantiles {
		v, err := est.Query(q)
		if err != nil {
			return out, err
		}
		out[i] = v
	}
	return out, nil
}
