package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactBasics(t *testing.T) {
	e := NewExact()
	if _, err := e.Query(0.5); err != ErrNoData {
		t.Fatalf("empty Query err = %v, want ErrNoData", err)
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		e.Insert(v)
	}
	if e.Count() != 5 {
		t.Fatalf("Count = %d", e.Count())
	}
	med, err := e.Query(0.5)
	if err != nil || med != 3 {
		t.Fatalf("median = %v, %v", med, err)
	}
	lo, _ := e.Query(0)
	hi, _ := e.Query(1)
	if lo != 1 || hi != 5 {
		t.Fatalf("min/max = %v/%v", lo, hi)
	}
	if _, err := e.Query(1.5); err == nil {
		t.Fatal("want range error")
	}
	e.Reset()
	if e.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestExactInsertAfterQuery(t *testing.T) {
	e := NewExact()
	e.Insert(2)
	e.Insert(1)
	if v, _ := e.Query(0.5); v != 1.5 {
		t.Fatalf("median = %v", v)
	}
	e.Insert(0) // must re-sort
	if v, _ := e.Query(0); v != 0 {
		t.Fatalf("min after late insert = %v", v)
	}
}

func TestExactValuesSorted(t *testing.T) {
	e := NewExact()
	for _, v := range []float64{3, 1, 2} {
		e.Insert(v)
	}
	vs := e.Values()
	if !sort.Float64sAreSorted(vs) {
		t.Fatalf("Values not sorted: %v", vs)
	}
}

func TestSummarizeTrackedQuantiles(t *testing.T) {
	e := NewExact()
	for i := 1; i <= 100; i++ {
		e.Insert(float64(i))
	}
	s, err := Summarize(e)
	if err != nil {
		t.Fatal(err)
	}
	// 25th/50th/95th of 1..100 under linear interpolation.
	if math.Abs(s[0]-25.75) > 1e-9 || math.Abs(s[1]-50.5) > 1e-9 || math.Abs(s[2]-95.05) > 1e-9 {
		t.Fatalf("Summarize = %v", s)
	}
	if _, err := Summarize(NewExact()); err == nil {
		t.Fatal("Summarize on empty estimator should error")
	}
}

func TestNewGKValidation(t *testing.T) {
	if _, err := NewGK(0); err == nil {
		t.Fatal("eps=0 should error")
	}
	if _, err := NewGK(1); err == nil {
		t.Fatal("eps=1 should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGK(2) should panic")
		}
	}()
	MustGK(2)
}

func TestGKEmptyAndRange(t *testing.T) {
	s := MustGK(0.01)
	if _, err := s.Query(0.5); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
	s.Insert(1)
	if _, err := s.Query(-0.1); err == nil {
		t.Fatal("want range error")
	}
}

// rankError returns |estimated rank - target rank| for value v at quantile q
// within the sorted reference data.
func rankError(sorted []float64, v float64, q float64) float64 {
	n := len(sorted)
	target := math.Ceil(q * float64(n))
	if target < 1 {
		target = 1
	}
	// v's feasible rank range in sorted data:
	lo := sort.SearchFloat64s(sorted, v)                              // # strictly less
	hi := sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1))) // # <= v
	rlo, rhi := float64(lo+1), float64(hi)
	if rhi < rlo {
		rhi = rlo
	}
	switch {
	case target < rlo:
		return rlo - target
	case target > rhi:
		return target - rhi
	default:
		return 0
	}
}

func TestGKErrorBoundUniform(t *testing.T) {
	testGKErrorBound(t, func(rng *rand.Rand) float64 { return rng.Float64() })
}

func TestGKErrorBoundNormal(t *testing.T) {
	testGKErrorBound(t, func(rng *rand.Rand) float64 { return rng.NormFloat64() })
}

func TestGKErrorBoundHeavyTail(t *testing.T) {
	testGKErrorBound(t, func(rng *rand.Rand) float64 { return math.Exp(rng.NormFloat64() * 2) })
}

func TestGKErrorBoundSortedInput(t *testing.T) {
	var i int
	testGKErrorBound(t, func(*rand.Rand) float64 { i++; return float64(i) })
}

func testGKErrorBound(t *testing.T, gen func(*rand.Rand) float64) {
	t.Helper()
	const (
		eps = 0.02
		n   = 20000
	)
	rng := rand.New(rand.NewSource(11))
	s := MustGK(eps)
	data := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := gen(rng)
		s.Insert(v)
		data = append(data, v)
	}
	sort.Float64s(data)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99} {
		v, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if re := rankError(data, v, q); re > eps*float64(n)+1 {
			t.Errorf("q=%v: rank error %v exceeds eps*n=%v", q, re, eps*float64(n))
		}
	}
}

func TestGKMemorySublinear(t *testing.T) {
	s := MustGK(0.01)
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	for i := 0; i < n; i++ {
		s.Insert(rng.Float64())
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
	// The sketch must be far smaller than the stream; for eps=0.01 the
	// bound is O(100 * log(0.01 n)) ≈ hundreds of tuples.
	if s.TupleCount() > n/10 {
		t.Fatalf("TupleCount = %d, not sublinear vs n=%d", s.TupleCount(), n)
	}
	if s.Epsilon() != 0.01 {
		t.Fatalf("Epsilon = %v", s.Epsilon())
	}
	s.Reset()
	if s.Count() != 0 || s.TupleCount() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// Property: GK answers are always within the observed min/max.
func TestGKBoundedProperty(t *testing.T) {
	f := func(raw []float64, qSeed uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := MustGK(0.05)
		mn, mx := vals[0], vals[0]
		for _, v := range vals {
			s.Insert(v)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		q := float64(qSeed) / 255
		got, err := s.Query(q)
		return err == nil && got >= mn && got <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("size 0 should error")
	}
	if _, err := NewReservoir(10, nil); err == nil {
		t.Fatal("nil rng should error")
	}
}

func TestReservoirSmallStreamIsExact(t *testing.T) {
	r, err := NewReservoir(100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		r.Insert(float64(i))
	}
	v, err := r.Query(0.5)
	if err != nil || v != 5 {
		t.Fatalf("median = %v, %v", v, err)
	}
	if r.Count() != 9 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestReservoirApproximatesQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r, err := NewReservoir(2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		r.Insert(rng.Float64())
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		v, err := r.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-q) > 0.05 {
			t.Errorf("q=%v: got %v", q, v)
		}
	}
	r.Reset()
	if _, err := r.Query(0.5); err != ErrNoData {
		t.Fatalf("after Reset err = %v", err)
	}
}

func TestReservoirQueryRange(t *testing.T) {
	r, _ := NewReservoir(4, rand.New(rand.NewSource(2)))
	r.Insert(1)
	if _, err := r.Query(2); err == nil {
		t.Fatal("want range error")
	}
}

// Cross-implementation agreement: on a moderate stream, Exact, GK and
// Reservoir should agree to within their respective error budgets.
func TestEstimatorsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	exact := NewExact()
	gk := MustGK(0.01)
	res, _ := NewReservoir(5000, rand.New(rand.NewSource(18)))
	for i := 0; i < 30000; i++ {
		v := rng.NormFloat64()*10 + 50
		exact.Insert(v)
		gk.Insert(v)
		res.Insert(v)
	}
	for _, q := range TrackedQuantiles {
		ev, _ := exact.Query(q)
		gv, _ := gk.Query(q)
		rv, _ := res.Query(q)
		if math.Abs(ev-gv) > 1.0 {
			t.Errorf("q=%v: exact %v vs gk %v", q, ev, gv)
		}
		if math.Abs(ev-rv) > 2.0 {
			t.Errorf("q=%v: exact %v vs reservoir %v", q, ev, rv)
		}
	}
}
