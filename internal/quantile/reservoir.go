package quantile

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Reservoir is a fixed-size uniform random sample of the stream ("Algorithm
// R"). Quantiles of the sample approximate quantiles of the stream with
// error O(1/sqrt(k)); it is the cheapest summarization and serves as a
// baseline for the GK sketch in benchmarks.
type Reservoir struct {
	k    int
	n    int
	vals []float64
	rng  *rand.Rand
}

// NewReservoir returns a reservoir sampler holding at most k observations,
// drawing replacement decisions from rng (which must not be nil).
func NewReservoir(k int, rng *rand.Rand) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("quantile: reservoir size %d must be positive", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("quantile: reservoir requires a rand source")
	}
	return &Reservoir{k: k, vals: make([]float64, 0, k), rng: rng}, nil
}

// Insert adds one observation, possibly evicting a random earlier one.
func (r *Reservoir) Insert(v float64) {
	r.n++
	if len(r.vals) < r.k {
		r.vals = append(r.vals, v)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.vals[j] = v
	}
}

// InsertBatch adds the batch with skip-sampling (Vitter's Algorithm X):
// instead of one rng draw per value, it draws one uniform variate per
// *accepted* value and walks the rejection run it implies — P(skip ≥ s) =
// ∏(1 - k/(n+t)) — so in the steady state, where acceptances are rare, most
// of the batch costs a counter increment and one multiply. Each value's
// marginal acceptance probability is exactly Algorithm R's k/n, but the rng
// stream is consumed differently, so the retained sample differs from
// per-value insertion in draw sequence only, not in distribution.
func (r *Reservoir) InsertBatch(vs []float64) {
	i := 0
	for i < len(vs) && len(r.vals) < r.k {
		r.n++
		r.vals = append(r.vals, vs[i])
		i++
	}
	for i < len(vs) {
		u := r.rng.Float64()
		p := 1.0
		for {
			r.n++
			p *= float64(r.n-r.k) / float64(r.n)
			if p <= u {
				break // value i is accepted at stream position n
			}
			i++
			if i >= len(vs) {
				// Batch exhausted mid-run: every skipped value was rejected
				// with its correct marginal probability and n is up to date,
				// so abandoning the variate is unbiased.
				return
			}
		}
		r.vals[r.rng.Intn(r.k)] = vs[i]
		i++
	}
}

// InsertSortedBatch is InsertBatch: sortedness buys the sampler nothing.
func (r *Reservoir) InsertSortedBatch(vs []float64) { r.InsertBatch(vs) }

// Query returns the q-th quantile of the current sample.
func (r *Reservoir) Query(q float64) (float64, error) {
	if len(r.vals) == 0 {
		return 0, ErrNoData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("quantile: q=%v out of [0,1]", q)
	}
	sorted := append([]float64(nil), r.vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 1 {
		return sorted[0], nil
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Merge absorbs another reservoir by re-inserting its retained sample. The
// union is a biased approximation of sampling the concatenated stream (each
// retained value re-competes for a slot), which is acceptable for the
// baseline role this estimator plays.
func (r *Reservoir) Merge(src Estimator) error {
	o, ok := src.(*Reservoir)
	if !ok {
		return fmt.Errorf("quantile: cannot merge %T into *Reservoir", src)
	}
	for _, v := range o.vals {
		r.Insert(v)
	}
	// Insert only counted the retained sample; account for the source
	// observations that were evicted so Count still reports the whole
	// stream.
	r.n += o.n - len(o.vals)
	return nil
}

// Count reports the number of observations inserted (not the sample size).
func (r *Reservoir) Count() int { return r.n }

// Reset discards the sample.
func (r *Reservoir) Reset() {
	r.n = 0
	r.vals = r.vals[:0]
}

var _ Estimator = (*Reservoir)(nil)
