// Package report renders experiment results as plain-text tables, line
// plots and fingerprint heatmaps — the terminal equivalents of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes an aligned plain-text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(headers); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one named curve of a line plot.
type Series struct {
	Name string
	Y    []float64 // aligned with the plot's X values; NaN = gap
}

// LinePlot renders curves over a shared X axis as an ASCII grid. Each
// series gets a distinct mark; overlapping points show the later series.
func LinePlot(w io.Writer, title string, x []float64, series []Series, height int) error {
	if len(x) == 0 || len(series) == 0 {
		return fmt.Errorf("report: empty plot %q", title)
	}
	if height < 5 {
		height = 5
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Y) != len(x) {
			return fmt.Errorf("report: series %q has %d points, want %d", s.Name, len(s.Y), len(x))
		}
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: plot %q has no finite points", title)
	}
	if hi == lo {
		hi = lo + 1
	}
	marks := []byte{'*', '+', 'o', 'x', '@', '%', '&', '~'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(x)))
	}
	for si, s := range series {
		m := marks[si%len(marks)]
		for xi, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			r := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[r][xi] = m
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", lo)
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(w, "        %s\n", strings.Repeat("-", len(x)+2))
	fmt.Fprintf(w, "        x: %g .. %g\n", x[0], x[len(x)-1])
	for si, s := range series {
		fmt.Fprintf(w, "        %c %s\n", marks[si%len(marks)], s.Name)
	}
	return nil
}

// Heatmap renders a fingerprint grid (rows = epochs, columns = metric
// quantiles) in the style of Figure 1: '.' cold (-1), ' ' normal (0),
// '#' hot (+1); intermediate values round toward the nearest state.
func Heatmap(w io.Writer, grid [][]float64) error {
	if len(grid) == 0 {
		return fmt.Errorf("report: empty heatmap")
	}
	for _, row := range grid {
		var b strings.Builder
		for _, v := range row {
			switch {
			case v < -0.5:
				b.WriteByte('.')
			case v > 0.5:
				b.WriteByte('#')
			case v < -0.05:
				b.WriteByte(',')
			case v > 0.05:
				b.WriteByte('+')
			default:
				b.WriteByte(' ')
			}
		}
		if _, err := fmt.Fprintf(w, "|%s|\n", b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// F formats a float compactly, mapping NaN to "n/a".
func F(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}
