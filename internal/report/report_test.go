package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"id", "label"}, [][]string{
		{"A", "overloaded front-end"},
		{"B", "overloaded back-end"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id") || !strings.Contains(lines[0], "label") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "--") {
		t.Fatalf("separator = %q", lines[1])
	}
	// Columns align: "label" starts at the same offset everywhere.
	off := strings.Index(lines[0], "label")
	if strings.Index(lines[2], "overloaded") != off {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestLinePlotBasics(t *testing.T) {
	var b strings.Builder
	x := []float64{0, 0.5, 1}
	err := LinePlot(&b, "acc vs alpha", x, []Series{
		{Name: "known", Y: []float64{0.2, 0.8, 0.9}},
		{Name: "unknown", Y: []float64{1.0, 0.7, 0.1}},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "acc vs alpha") || !strings.Contains(out, "known") {
		t.Fatalf("plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("plot missing marks:\n%s", out)
	}
}

func TestLinePlotErrors(t *testing.T) {
	var b strings.Builder
	if err := LinePlot(&b, "t", nil, []Series{{Name: "a"}}, 10); err == nil {
		t.Fatal("want empty-x error")
	}
	if err := LinePlot(&b, "t", []float64{1}, []Series{{Name: "a", Y: []float64{1, 2}}}, 10); err == nil {
		t.Fatal("want length-mismatch error")
	}
	nan := math.NaN()
	if err := LinePlot(&b, "t", []float64{1}, []Series{{Name: "a", Y: []float64{nan}}}, 10); err == nil {
		t.Fatal("want no-finite-points error")
	}
}

func TestLinePlotHandlesNaNGapsAndFlatSeries(t *testing.T) {
	var b strings.Builder
	x := []float64{0, 1, 2}
	err := LinePlot(&b, "flat", x, []Series{
		{Name: "a", Y: []float64{0.5, math.NaN(), 0.5}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("flat series not plotted")
	}
}

func TestHeatmapAlphabet(t *testing.T) {
	var b strings.Builder
	err := Heatmap(&b, [][]float64{
		{-1, 0, 1},
		{-0.2, 0.2, 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "|. #|" {
		t.Fatalf("row 0 = %q", lines[0])
	}
	if lines[1] != "|,+#|" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if err := Heatmap(&b, nil); err == nil {
		t.Fatal("want empty error")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.805) != "80.5%" {
		t.Fatalf("Pct = %q", Pct(0.805))
	}
	if Pct(math.NaN()) != "n/a" {
		t.Fatal("Pct NaN")
	}
	if F(1.23456, 2) != "1.23" || F(math.NaN(), 2) != "n/a" {
		t.Fatal("F wrong")
	}
}
