package scenario

import (
	"bytes"
	"fmt"
	"reflect"

	"dcfp/internal/crisis"
	"dcfp/internal/dcsim"
	"dcfp/internal/fleet"
	"dcfp/internal/incident"
	"dcfp/internal/metrics"
	"dcfp/internal/monitor"
	"dcfp/internal/telemetry"
)

// Detection is one inactive→active transition in the report stream, mapped
// back to the scripted crisis that caused it (-1 if none matched).
type Detection struct {
	Crisis int           `json:"crisis"`
	Epoch  metrics.Epoch `json:"epoch"`
}

// CrisisOutcome is one resolved crisis scored against §4.3.
type CrisisOutcome struct {
	Crisis  int    `json:"crisis"` // scripted index
	ID      string `json:"id"`
	Truth   string `json:"truth"`
	Known   bool   `json:"known"`
	Emitted string `json:"emitted"`
	Correct bool   `json:"correct"`
}

// Result is everything a scenario run measured, plus the expectation
// violations (empty Failures = the scenario passed).
type Result struct {
	Name     string   `json:"name"`
	Failures []string `json:"failures"`

	Detections     []Detection     `json:"detections"`
	Outcomes       []CrisisOutcome `json:"outcomes"`
	Resolved       int             `json:"resolved"`
	KnownAccuracy  float64         `json:"known_accuracy"`
	KnownScored    int             `json:"known_scored"`
	DegradedEpochs int64           `json:"degraded_epochs"`
	Rebalances     int             `json:"rebalances"`
	ZombieRejected int             `json:"zombie_rejected"`
	CorruptFrames  int             `json:"corrupt_frames"`
	PartialMerges  int             `json:"partial_merges"`
	Evicted        int             `json:"evicted"`
	Restarts       int             `json:"coordinator_restarts"`
	// IncidentReports counts the incident artifacts the run assembled
	// (open report included).
	IncidentReports int `json:"incident_reports"`
}

// Passed reports whether every expectation held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Summary is a one-line human rendering for logs and CI output.
func (r *Result) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Failures))
	}
	return fmt.Sprintf("%s: %s — %d detections, %d resolved, known accuracy %.2f (%d scored), %d degraded epochs, %d partial merges, %d restarts",
		r.Name, verdict, len(r.Detections), r.Resolved, r.KnownAccuracy, r.KnownScored, r.DegradedEpochs, r.PartialMerges, r.Restarts)
}

// operator replays the simulated operator loop over a report stream:
// detections on inactive→active transitions, ground-truth resolution on
// active→inactive ones, each resolution scored against the advice votes.
type operator struct {
	mon      *monitor.Monitor
	score    *monitor.Scoreboard
	startIdx map[metrics.Epoch]int
	// incidents, when set, receives the resolution outcomes so the run's
	// incident artifacts carry their §4.3 scores (daemon parity). It is
	// deliberately not rolled back on a coordinator restart — incident
	// reports are an observability artifact, not recovery state, exactly
	// like the daemon's.
	incidents *incident.Builder

	lastActive bool
	label      string
	truthIdx   int
	resolved   int
	detections []Detection
	outcomes   []CrisisOutcome
	err        error
}

// opSnapshot is the operator's checkpointable working state.
type opSnapshot struct {
	lastActive bool
	label      string
	truthIdx   int
	resolved   int
	detections []Detection
	outcomes   []CrisisOutcome
	score      monitor.ScoreboardState
}

func (op *operator) snapshot() opSnapshot {
	return opSnapshot{
		lastActive: op.lastActive,
		label:      op.label,
		truthIdx:   op.truthIdx,
		resolved:   op.resolved,
		detections: append([]Detection(nil), op.detections...),
		outcomes:   append([]CrisisOutcome(nil), op.outcomes...),
		score:      op.score.State(),
	}
}

func (op *operator) restore(s opSnapshot, mon *monitor.Monitor) {
	op.mon = mon
	op.lastActive = s.lastActive
	op.label = s.label
	op.truthIdx = s.truthIdx
	op.resolved = s.resolved
	op.detections = append([]Detection(nil), s.detections...)
	op.outcomes = append([]CrisisOutcome(nil), s.outcomes...)
	op.score.SetState(s.score)
}

func (op *operator) observe(rep *monitor.EpochReport, act *crisis.Instance) {
	if act != nil {
		op.label = typeLabel(act.Type)
		if idx, ok := op.startIdx[act.Start]; ok {
			op.truthIdx = idx
		}
	}
	if !op.lastActive && rep.CrisisActive {
		op.detections = append(op.detections, Detection{Crisis: op.truthIdx, Epoch: rep.Epoch})
	}
	if op.lastActive && !rep.CrisisActive {
		op.resolve(rep.Epoch)
	}
	op.lastActive = rep.CrisisActive
}

// resolve files the ground-truth diagnosis for the crisis that just ended
// and scores the advice the monitor emitted for it, exactly the way the
// daemon's /crises/resolve path does.
func (op *operator) resolve(e metrics.Epoch) {
	recs := op.mon.Crises()
	if len(recs) == 0 {
		op.fail(fmt.Errorf("epoch %d: crisis ended with no record", e))
		return
	}
	rec := recs[len(recs)-1]
	if err := op.mon.ResolveCrisis(rec.ID, op.label); err != nil {
		op.fail(err)
		return
	}
	op.resolved++
	expls, ok := op.mon.Explanations(rec.ID)
	if !ok || len(expls) == 0 {
		// Detected before thresholds existed: resolvable, not scorable.
		return
	}
	votes := expls[len(expls)-1].Votes
	known := false
	for _, c := range expls[0].Candidates {
		if c.Label == op.label {
			known = true
			break
		}
	}
	o := op.score.Record(monitor.Feedback{CrisisID: rec.ID, Truth: op.label, Known: known, Votes: votes})
	if op.incidents != nil {
		op.incidents.Resolve(e, rec.ID, op.label, known, votes, o)
	}
	op.outcomes = append(op.outcomes, CrisisOutcome{
		Crisis: op.truthIdx, ID: rec.ID, Truth: op.label, Known: known,
		Emitted: o.Emitted, Correct: o.Correct,
	})
}

func (op *operator) fail(err error) {
	if op.err == nil {
		op.err = err
	}
}

// checkpointImage is one consistent cut of the fleet: monitor bytes,
// coordinator state, and the operator's bookkeeping.
type checkpointImage struct {
	mon   []byte
	coord fleet.CoordinatorState
	op    opSnapshot
	epoch int
}

// Run executes the scenario in-process and evaluates its expectations.
// Operational errors (the harness itself failing) return an error;
// expectation violations land in Result.Failures.
func Run(sc *Scenario) (*Result, error) {
	scfg, err := sc.streamConfig()
	if err != nil {
		return nil, err
	}
	sF, err := dcsim.NewStream(scfg)
	if err != nil {
		return nil, err
	}
	startIdx := make(map[metrics.Epoch]int, len(sc.Crises))
	for i, c := range sc.Crises {
		startIdx[metrics.Epoch(c.Start)] = i
	}
	newMon := func(reg *telemetry.Registry) (*monitor.Monitor, error) {
		cfg := monitor.DefaultConfig(sF.Catalog(), sF.SLA())
		cfg.ThresholdRefreshEpochs = sc.Fleet.ThresholdRefreshEpochs
		cfg.MinEpochsForThresholds = sc.Fleet.MinEpochsForThresholds
		cfg.MinCoverage = sc.Fleet.MinCoverage
		cfg.Workers = 1
		cfg.Telemetry = reg
		return monitor.New(cfg)
	}

	reg := telemetry.NewRegistry()
	mF, err := newMon(reg)
	if err != nil {
		return nil, err
	}
	fcfg := sc.faultConfig()
	fcfg.Telemetry = reg
	faults, err := fleet.NewLinkFaults(fcfg)
	if err != nil {
		return nil, err
	}

	inc := incident.New(incident.Config{Registry: reg, Capacity: 1024})
	opF := &operator{mon: mF, score: monitor.NewScoreboard(nil), startIdx: startIdx, truthIdx: -1, incidents: inc}
	reports := map[metrics.Epoch]*monitor.EpochReport{}
	ch, err := fleet.NewChaosHarness(fleet.ChaosConfig{
		Coordinator: fleet.CoordinatorConfig{
			Machines:        sc.Fleet.Machines,
			Shards:          sc.Fleet.Shards,
			Monitor:         mF,
			Window:          sc.Fleet.Window,
			DeadAfterEpochs: sc.Fleet.DeadAfterEpochs,
			OnReport: func(rep *monitor.EpochReport, act *crisis.Instance) {
				reports[rep.Epoch] = rep
				// Incident bookkeeping first so the window finalizes
				// before the operator's resolution scores it.
				activeID := ""
				if rep.CrisisActive {
					activeID = opF.mon.Stats().ActiveCrisisID
				}
				inc.Observe(rep, activeID)
				opF.observe(rep, act)
			},
			Telemetry: reg,
		},
		Aggregator:      fleet.AggregatorConfig{NumMetrics: sF.Catalog().Len(), SLA: sF.SLA()},
		Faults:          faults,
		FlushAfterSteps: sc.Fleet.FlushAfterSteps,
		ReplayCapacity:  sc.Fleet.ReplayCapacity,
	})
	if err != nil {
		return nil, err
	}

	// Clean single-node reference, only when an equivalence expectation
	// needs it: same scripted stream, same monitor config, no fleet.
	var sC *dcsim.Stream
	var opC *operator
	var cleanReps []*monitor.EpochReport
	if sc.Expect.EquivalentToClean {
		if sC, err = dcsim.NewStream(scfg); err != nil {
			return nil, err
		}
		mC, err := newMon(nil)
		if err != nil {
			return nil, err
		}
		opC = &operator{mon: mC, score: monitor.NewScoreboard(nil), startIdx: startIdx, truthIdx: -1}
	}

	events := make(map[int][]Event, len(sc.Events))
	for _, ev := range sc.Events {
		events[ev.At] = append(events[ev.At], ev)
	}

	res := &Result{Name: sc.Name}
	var ckpt *checkpointImage
	for i := 0; i < sc.Fleet.Epochs; i++ {
		for _, ev := range events[i] {
			switch ev.Action {
			case ActionPartition:
				faults.Partition(ev.Shard, ch.StepCount()+ev.Steps)
			case ActionKillShard:
				ch.Kill(ev.Shard)
			case ActionRestartShard:
				ch.Restart(ev.Shard)
			case ActionSlowShard:
				faults.SetSlow(ev.Shard, ev.Mean)
			case ActionRestartCoordinator:
				if ckpt == nil {
					return nil, fmt.Errorf("scenario %s: coordinator restart at epoch %d with no checkpoint", sc.Name, i)
				}
				mR, err := newMon(reg)
				if err != nil {
					return nil, err
				}
				if _, err := mR.ReadCheckpoint(bytes.NewReader(ckpt.mon)); err != nil {
					return nil, fmt.Errorf("scenario %s: restoring checkpoint from epoch %d: %w", sc.Name, ckpt.epoch, err)
				}
				if _, err := ch.RestartCoordinator(mR, ckpt.coord); err != nil {
					return nil, err
				}
				opF.restore(ckpt.op, mR)
				res.Restarts++
			}
		}

		rows, act, err := sF.Next()
		if err != nil {
			return nil, err
		}
		if err := ch.Step(metrics.Epoch(i), rows, act); err != nil {
			return nil, err
		}
		if opF.err != nil {
			return nil, opF.err
		}

		if opC != nil {
			rowsC, actC, err := sC.Next()
			if err != nil {
				return nil, err
			}
			repC, err := opC.mon.ObserveEpoch(rowsC)
			if err != nil {
				return nil, err
			}
			cleanReps = append(cleanReps, repC)
			opC.observe(repC, actC)
			if opC.err != nil {
				return nil, opC.err
			}
		}

		if i > 0 && i%sc.Fleet.CheckpointEvery == 0 {
			var buf bytes.Buffer
			img := &checkpointImage{epoch: i}
			var ckErr error
			ch.Coordinator.Sync(func(st fleet.CoordinatorState) {
				img.coord = st
				ckErr = opF.mon.WriteCheckpoint(&buf, monitor.CheckpointMeta{SourceEpoch: int64(i)})
			})
			if ckErr != nil {
				return nil, ckErr
			}
			img.mon = buf.Bytes()
			img.op = opF.snapshot()
			ckpt = img
		}
	}
	if err := ch.Drain(200 + 4*sc.Fleet.FlushAfterSteps); err != nil {
		return nil, err
	}
	if opF.err != nil {
		return nil, opF.err
	}

	// Measurements.
	res.Detections = opF.detections
	res.Outcomes = opF.outcomes
	res.Resolved = opF.resolved
	st := opF.score.State()
	res.KnownAccuracy = st.KnownAccuracy
	res.KnownScored = int(st.KnownTotal)
	res.DegradedEpochs = opF.mon.Stats().DegradedEpochs
	res.Rebalances = int(regValue(reg, "dcfp_fleet_rebalances_total"))
	res.ZombieRejected = ch.ZombieRejected
	res.CorruptFrames = int(regValue(reg, "dcfp_fleet_frames_total", telemetry.Label{Key: "result", Value: "corrupt"}))
	res.PartialMerges = int(regValue(reg, "dcfp_fleet_epochs_merged_total", telemetry.Label{Key: "completeness", Value: "partial"}))
	res.Evicted = ch.Evicted()
	res.IncidentReports = inc.Count()

	var cleanMon *monitor.Monitor
	if opC != nil {
		cleanMon = opC.mon
	}
	res.Failures = evaluate(sc, res, reports, cleanReps, opF, cleanMon, inc)
	return res, nil
}

// evaluate checks every expectation and returns the violations.
func evaluate(sc *Scenario, res *Result, reports map[metrics.Epoch]*monitor.EpochReport,
	cleanReps []*monitor.EpochReport, opF *operator, cleanMon *monitor.Monitor, inc *incident.Builder) []string {
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	ex := sc.Expect

	if ex.EquivalentToClean {
		diverged := false
		for i, rc := range cleanReps {
			rf := reports[metrics.Epoch(i)]
			if rf == nil {
				failf("equivalence: fleet never reported epoch %d", i)
				diverged = true
				break
			}
			if !reflect.DeepEqual(rc, rf) {
				failf("equivalence: reports diverge at epoch %d", i)
				diverged = true
				break
			}
		}
		if !diverged {
			if !reflect.DeepEqual(opF.mon.Stats(), cleanMon.Stats()) {
				failf("equivalence: final stats diverge")
			}
			if !reflect.DeepEqual(opF.mon.Crises(), cleanMon.Crises()) {
				failf("equivalence: crisis records diverge")
			}
		}
	}

	for i, d := range ex.Detect {
		var det *Detection
		for j := range res.Detections {
			if res.Detections[j].Crisis == d.Crisis {
				det = &res.Detections[j]
				break
			}
		}
		if det == nil {
			failf("detect[%d]: crisis %d was never detected", i, d.Crisis)
			continue
		}
		if int(det.Epoch) > d.By {
			failf("detect[%d]: crisis %d detected at epoch %d, after deadline %d", i, d.Crisis, det.Epoch, d.By)
		}
		if d.IdentifiedAs == "" {
			continue
		}
		var out *CrisisOutcome
		for j := range res.Outcomes {
			if res.Outcomes[j].Crisis == d.Crisis {
				out = &res.Outcomes[j]
				break
			}
		}
		if out == nil {
			failf("detect[%d]: crisis %d was never scored for identification", i, d.Crisis)
		} else if out.Emitted != d.IdentifiedAs {
			failf("detect[%d]: crisis %d identified as %q, want %q", i, d.Crisis, out.Emitted, d.IdentifiedAs)
		}
	}

	if ex.Resolved != nil && res.Resolved != *ex.Resolved {
		failf("resolved %d crises, want %d", res.Resolved, *ex.Resolved)
	}
	if ex.MinKnownAccuracy != nil {
		if res.KnownScored == 0 {
			failf("known accuracy floor %.2f set but no known diagnoses were scored", *ex.MinKnownAccuracy)
		} else if res.KnownAccuracy < *ex.MinKnownAccuracy {
			failf("known accuracy %.2f below floor %.2f", res.KnownAccuracy, *ex.MinKnownAccuracy)
		}
	}
	if int(res.DegradedEpochs) < ex.MinDegradedEpochs {
		failf("%d degraded epochs, want at least %d", res.DegradedEpochs, ex.MinDegradedEpochs)
	}
	if ex.MaxDegradedEpochs != nil && int(res.DegradedEpochs) > *ex.MaxDegradedEpochs {
		failf("%d degraded epochs, want at most %d", res.DegradedEpochs, *ex.MaxDegradedEpochs)
	}
	if res.Rebalances < ex.MinRebalances {
		failf("%d rebalances, want at least %d", res.Rebalances, ex.MinRebalances)
	}
	if res.ZombieRejected < ex.MinZombieRejected {
		failf("%d zombie rejections, want at least %d", res.ZombieRejected, ex.MinZombieRejected)
	}
	if ex.CorruptFramesRejected && res.CorruptFrames == 0 {
		failf("no corrupt frames rejected despite corruption expectation")
	}
	if ex.MaxPartialMerges != nil && res.PartialMerges > *ex.MaxPartialMerges {
		failf("%d partial merges, want at most %d", res.PartialMerges, *ex.MaxPartialMerges)
	}
	if ex.MaxEvicted != nil && res.Evicted > *ex.MaxEvicted {
		failf("%d frames evicted, want at most %d", res.Evicted, *ex.MaxEvicted)
	}
	if ex.MinIncidentReports != nil {
		if res.IncidentReports < *ex.MinIncidentReports {
			failf("%d incident reports assembled, want at least %d", res.IncidentReports, *ex.MinIncidentReports)
		}
		// Every scored resolution must have produced a matching resolved
		// incident artifact — the same consistency /incidents/{id} and the
		// audit journal guarantee each other in the daemon.
		for _, out := range res.Outcomes {
			r, ok := inc.Get(out.ID)
			switch {
			case !ok:
				failf("outcome %s has no incident report", out.ID)
			case r.Score == nil:
				failf("incident %s was never scored", out.ID)
			case r.Score.Emitted != out.Emitted || r.Score.Correct != out.Correct:
				failf("incident %s score (%q, correct=%v) disagrees with outcome (%q, correct=%v)",
					out.ID, r.Score.Emitted, r.Score.Correct, out.Emitted, out.Correct)
			}
		}
	}
	return fails
}

func regValue(reg *telemetry.Registry, name string, labels ...telemetry.Label) float64 {
	v, _ := reg.Value(name, labels...)
	return v
}
