// Package scenario is the declarative chaos-scenario engine: a JSON format
// describing a fleet shape, a scripted crisis schedule, timed fault events
// (partitions, shard kills, coordinator restarts, slow links), and the
// outcomes the run must exhibit — detection deadlines, identification
// labels, accuracy floors, bounded degradation, or byte-identical
// equivalence to a clean single-node run. Scenarios load from
// scenarios/*.json, run in-process on the fleet chaos harness, and back the
// `dcfpd validate`/`dcfpd -scenario` subcommands plus the CI matrix.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dcfp/internal/crisis"
	"dcfp/internal/dcsim"
	"dcfp/internal/fleet"
	"dcfp/internal/metrics"
)

// Scenario is one declarative chaos run.
type Scenario struct {
	// Name identifies the scenario in results and CI output.
	Name string `json:"name"`
	// Description says what the run demonstrates.
	Description string `json:"description,omitempty"`
	// Paper optionally cites the paper section the scenario exercises
	// (e.g. "§4.4 operational considerations").
	Paper string `json:"paper,omitempty"`
	// Fleet shapes the simulated fleet and its merge discipline.
	Fleet Fleet `json:"fleet"`
	// Faults is the run-wide random fault mix on every aggregator→
	// coordinator link (omit for a perfect network; partitions and slow
	// links arrive via Events either way).
	Faults *Faults `json:"faults,omitempty"`
	// Crises is the scripted crisis schedule — the ground truth the
	// expectations are phrased against.
	Crises []Crisis `json:"crises"`
	// Events are timed chaos actions applied at their epoch.
	Events []Event `json:"events,omitempty"`
	// Expect is the pass/fail contract.
	Expect Expect `json:"expect"`
}

// Fleet shapes the simulated datacenter and the two-tier pipeline over it.
// Zero fields take the documented defaults.
type Fleet struct {
	// Machines in the datacenter (default 100).
	Machines int `json:"machines,omitempty"`
	// Shards the machines are split across (default 2).
	Shards int `json:"shards,omitempty"`
	// Seed drives the workload, crisis severities, and fault plan
	// (default 42).
	Seed int64 `json:"seed,omitempty"`
	// Epochs is the run length (required).
	Epochs int `json:"epochs"`
	// WarmupEpochs precede the first possible crisis (default 24).
	WarmupEpochs int `json:"warmup_epochs,omitempty"`
	// MinCoverage is the monitor's coverage floor; below it epochs are
	// degraded and the crisis state machine freezes (default 0.5).
	MinCoverage float64 `json:"min_coverage,omitempty"`
	// Window is the coordinator's admission window in epochs (default 8).
	Window int `json:"window,omitempty"`
	// FlushAfterSteps is the step-counted lateness budget before the
	// watermark epoch is force-merged (default 4).
	FlushAfterSteps int `json:"flush_after_steps,omitempty"`
	// DeadAfterEpochs declares a silent shard dead and rebalances its
	// machines (default 0 = never).
	DeadAfterEpochs int `json:"dead_after_epochs,omitempty"`
	// ReplayCapacity bounds each shard's replay ring (default 64).
	ReplayCapacity int `json:"replay_capacity,omitempty"`
	// CheckpointEvery is the checkpoint cadence in epochs; a
	// restart_coordinator event restores the latest one (default 24).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// ThresholdRefreshEpochs / MinEpochsForThresholds tune the monitor's
	// threshold cadence (defaults 24 / 48, sized to the short scripted
	// runs scenarios use).
	ThresholdRefreshEpochs int `json:"threshold_refresh_epochs,omitempty"`
	MinEpochsForThresholds int `json:"min_epochs_for_thresholds,omitempty"`
}

// Faults mirrors fleet.LinkFaultConfig: per-attempt probabilities of the
// random fault classes. The injector seed is Fleet.Seed+1 unless Seed is
// set, so the whole run replays from one scenario file.
type Faults struct {
	Seed          int64   `json:"seed,omitempty"`
	DropRate      float64 `json:"drop_rate,omitempty"`
	DupRate       float64 `json:"dup_rate,omitempty"`
	DelayRate     float64 `json:"delay_rate,omitempty"`
	MaxDelaySteps int     `json:"max_delay_steps,omitempty"`
	CorruptRate   float64 `json:"corrupt_rate,omitempty"`
	TruncateRate  float64 `json:"truncate_rate,omitempty"`
}

// Crisis pins one scripted crisis. Types are the paper's letters "A".."J";
// severity 0 draws from the usual 0.9..1.1 band.
type Crisis struct {
	Start    int     `json:"start"`
	Duration int     `json:"duration"`
	Type     string  `json:"type"`
	Severity float64 `json:"severity,omitempty"`
}

// Event actions.
const (
	// ActionPartition severs shard's link (shard -1 = all) for Steps
	// delivery steps; the backlog replays after the heal.
	ActionPartition = "partition"
	// ActionKillShard crashes the shard process: queued frames are lost,
	// no further frames are built until a restart.
	ActionKillShard = "kill_shard"
	// ActionRestartShard brings a killed shard back with an empty buffer,
	// adopting the coordinator's current assignment.
	ActionRestartShard = "restart_shard"
	// ActionRestartCoordinator crash-restarts the coordinator from the
	// latest checkpoint; shard backlogs fast-forward it to the present.
	ActionRestartCoordinator = "restart_coordinator"
	// ActionSlowShard gives shard's link exponential extra delay with the
	// given Mean in steps (Mean 0 restores a fast link).
	ActionSlowShard = "slow_shard"
)

// Event is one timed chaos action, applied just before epoch At is fed.
type Event struct {
	At     int     `json:"at"`
	Action string  `json:"action"`
	Shard  int     `json:"shard,omitempty"`
	Steps  int     `json:"steps,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
}

// Detect is one detection/identification expectation against a scripted
// crisis (by index into Crises).
type Detect struct {
	// Crisis indexes Crises.
	Crisis int `json:"crisis"`
	// By is the epoch the detection must have happened by.
	By int `json:"by"`
	// IdentifiedAs, when set, is the stable label identification must
	// emit for this crisis (e.g. "type-B", or "x" for unknown).
	IdentifiedAs string `json:"identified_as,omitempty"`
}

// Expect is the scenario's pass/fail contract. Pointer fields distinguish
// "don't care" from a zero bound.
type Expect struct {
	// EquivalentToClean demands per-epoch reports, final stats, and crisis
	// records byte-identical to an uninterrupted single-node run of the
	// same scripted stream — the strongest guarantee, for faults the
	// lateness budget must fully absorb.
	EquivalentToClean bool `json:"equivalent_to_clean,omitempty"`
	// Detect lists per-crisis detection deadlines and identification
	// labels.
	Detect []Detect `json:"detect,omitempty"`
	// Resolved is the exact number of crises the operator loop resolved.
	Resolved *int `json:"resolved,omitempty"`
	// MinKnownAccuracy floors the §4.3 known-crisis identification
	// accuracy over the run's scored diagnoses.
	MinKnownAccuracy *float64 `json:"min_known_accuracy,omitempty"`
	// MinDegradedEpochs / MaxDegradedEpochs bound how many epochs the
	// fleet spent frozen below the coverage floor — the only sanctioned
	// degradation mode.
	MinDegradedEpochs int  `json:"min_degraded_epochs,omitempty"`
	MaxDegradedEpochs *int `json:"max_degraded_epochs,omitempty"`
	// MinRebalances floors the assignment rebalances after shard deaths.
	MinRebalances int `json:"min_rebalances,omitempty"`
	// MinZombieRejected floors the frames refused from shards that came
	// back after being declared dead.
	MinZombieRejected int `json:"min_zombie_rejected,omitempty"`
	// CorruptFramesRejected demands the coordinator counted at least one
	// corrupt frame (proof the checksum path was exercised).
	CorruptFramesRejected bool `json:"corrupt_frames_rejected,omitempty"`
	// MaxPartialMerges bounds merges that synthesized an absent shard.
	MaxPartialMerges *int `json:"max_partial_merges,omitempty"`
	// MaxEvicted bounds frames dropped from replay rings.
	MaxEvicted *int `json:"max_evicted,omitempty"`
	// MinIncidentReports floors the incident reports the run assembled
	// (open or finalized). Setting it also demands every scored §4.3
	// outcome carry a matching resolved incident artifact.
	MinIncidentReports *int `json:"min_incident_reports,omitempty"`
}

// applyDefaults fills the documented zero-value defaults in place.
func (sc *Scenario) applyDefaults() {
	f := &sc.Fleet
	if f.Machines == 0 {
		f.Machines = 100
	}
	if f.Shards == 0 {
		f.Shards = 2
	}
	if f.Seed == 0 {
		f.Seed = 42
	}
	if f.WarmupEpochs == 0 {
		f.WarmupEpochs = 24
	}
	if f.MinCoverage == 0 {
		f.MinCoverage = 0.5
	}
	if f.Window == 0 {
		f.Window = 8
	}
	if f.FlushAfterSteps == 0 {
		f.FlushAfterSteps = 4
	}
	if f.ReplayCapacity == 0 {
		f.ReplayCapacity = 64
	}
	if f.CheckpointEvery == 0 {
		f.CheckpointEvery = 24
	}
	if f.ThresholdRefreshEpochs == 0 {
		f.ThresholdRefreshEpochs = 24
	}
	if f.MinEpochsForThresholds == 0 {
		f.MinEpochsForThresholds = 48
	}
	if sc.Faults != nil && sc.Faults.Seed == 0 {
		sc.Faults.Seed = f.Seed + 1
	}
}

// script converts the crisis schedule to the stream's scripted form.
func (sc *Scenario) script() ([]dcsim.ScriptedCrisis, error) {
	out := make([]dcsim.ScriptedCrisis, 0, len(sc.Crises))
	for i, c := range sc.Crises {
		ty, err := crisis.ParseType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("crisis %d: %w", i, err)
		}
		out = append(out, dcsim.ScriptedCrisis{
			Start:    metrics.Epoch(c.Start),
			Duration: c.Duration,
			Type:     ty,
			Severity: c.Severity,
		})
	}
	return out, nil
}

// streamConfig assembles the dcsim config the run (and its clean reference)
// uses; building it validates the crisis schedule via the stream's own
// checks.
func (sc *Scenario) streamConfig() (dcsim.StreamConfig, error) {
	cfg := dcsim.DefaultStreamConfig(sc.Fleet.Seed)
	cfg.Machines = sc.Fleet.Machines
	cfg.WarmupEpochs = sc.Fleet.WarmupEpochs
	script, err := sc.script()
	if err != nil {
		return dcsim.StreamConfig{}, err
	}
	cfg.Script = script
	return cfg, nil
}

// faultConfig assembles the injector config (zero rates for a perfect
// network, so Partition/SetSlow events still have an injector to land on).
func (sc *Scenario) faultConfig() fleet.LinkFaultConfig {
	cfg := fleet.LinkFaultConfig{Seed: sc.Fleet.Seed + 1}
	if f := sc.Faults; f != nil {
		cfg = fleet.LinkFaultConfig{
			Seed: f.Seed, DropRate: f.DropRate, DupRate: f.DupRate,
			DelayRate: f.DelayRate, MaxDelaySteps: f.MaxDelaySteps,
			CorruptRate: f.CorruptRate, TruncateRate: f.TruncateRate,
		}
	}
	return cfg
}

// Validate checks the scenario statically: the stream script, the fault
// rates, event shapes, and expectation references all have to be coherent
// before a run is attempted. `dcfpd validate` is this, over a file.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if sc.Fleet.Epochs <= 0 {
		return fmt.Errorf("scenario %s: fleet.epochs must be positive", sc.Name)
	}
	if sc.Fleet.Shards < 1 {
		return fmt.Errorf("scenario %s: fleet.shards %d < 1", sc.Name, sc.Fleet.Shards)
	}
	if sc.Fleet.CheckpointEvery < 1 {
		return fmt.Errorf("scenario %s: fleet.checkpoint_every %d < 1", sc.Name, sc.Fleet.CheckpointEvery)
	}
	scfg, err := sc.streamConfig()
	if err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if _, err := dcsim.NewStream(scfg); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if _, err := fleet.NewLinkFaults(sc.faultConfig()); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	for i, c := range sc.Crises {
		if c.Start+c.Duration > sc.Fleet.Epochs {
			return fmt.Errorf("scenario %s: crisis %d runs past the last epoch", sc.Name, i)
		}
	}
	if len(sc.Crises) == 0 {
		return fmt.Errorf("scenario %s: at least one scripted crisis is required (an empty script would fall back to random scheduling)", sc.Name)
	}
	for i, ev := range sc.Events {
		if ev.At < 0 || ev.At >= sc.Fleet.Epochs {
			return fmt.Errorf("scenario %s: event %d at epoch %d outside the run", sc.Name, i, ev.At)
		}
		switch ev.Action {
		case ActionPartition:
			if ev.Steps < 1 {
				return fmt.Errorf("scenario %s: event %d: partition needs steps >= 1", sc.Name, i)
			}
			if ev.Shard != -1 && (ev.Shard < 0 || ev.Shard >= sc.Fleet.Shards) {
				return fmt.Errorf("scenario %s: event %d: shard %d out of range", sc.Name, i, ev.Shard)
			}
		case ActionKillShard, ActionRestartShard:
			if ev.Shard < 0 || ev.Shard >= sc.Fleet.Shards {
				return fmt.Errorf("scenario %s: event %d: shard %d out of range", sc.Name, i, ev.Shard)
			}
		case ActionSlowShard:
			if ev.Shard < 0 || ev.Shard >= sc.Fleet.Shards {
				return fmt.Errorf("scenario %s: event %d: shard %d out of range", sc.Name, i, ev.Shard)
			}
			if ev.Mean < 0 {
				return fmt.Errorf("scenario %s: event %d: negative mean", sc.Name, i)
			}
		case ActionRestartCoordinator:
			if ev.At <= sc.Fleet.CheckpointEvery {
				return fmt.Errorf("scenario %s: event %d: coordinator restart at epoch %d precedes the first checkpoint (every %d)",
					sc.Name, i, ev.At, sc.Fleet.CheckpointEvery)
			}
		default:
			return fmt.Errorf("scenario %s: event %d: unknown action %q", sc.Name, i, ev.Action)
		}
	}
	for i, d := range sc.Expect.Detect {
		if d.Crisis < 0 || d.Crisis >= len(sc.Crises) {
			return fmt.Errorf("scenario %s: detect %d references crisis %d of %d", sc.Name, i, d.Crisis, len(sc.Crises))
		}
		if d.By <= sc.Crises[d.Crisis].Start {
			return fmt.Errorf("scenario %s: detect %d deadline %d not after crisis start %d",
				sc.Name, i, d.By, sc.Crises[d.Crisis].Start)
		}
		if d.By >= sc.Fleet.Epochs {
			return fmt.Errorf("scenario %s: detect %d deadline %d outside the run", sc.Name, i, d.By)
		}
	}
	if acc := sc.Expect.MinKnownAccuracy; acc != nil && (*acc < 0 || *acc > 1) {
		return fmt.Errorf("scenario %s: min_known_accuracy %v outside [0,1]", sc.Name, *acc)
	}
	if n := sc.Expect.MinIncidentReports; n != nil && *n < 0 {
		return fmt.Errorf("scenario %s: min_incident_reports %d negative", sc.Name, *n)
	}
	return nil
}

// Load reads, defaults, and validates one scenario file. Unknown JSON keys
// are errors — a typo in an expectation must not silently weaken it.
func Load(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", filepath.Base(path), err)
	}
	sc.applyDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// LoadDir loads every *.json scenario in dir, sorted by name.
func LoadDir(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no *.json files in %s", dir)
	}
	sort.Strings(paths)
	out := make([]*Scenario, 0, len(paths))
	for _, p := range paths {
		sc, err := Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// typeLabel is the operator's ground-truth label for a crisis type — what
// ResolveCrisis files and identified_as expectations match against.
func typeLabel(ty crisis.Type) string {
	return "type-" + ty.String()
}
