package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcfp/internal/crisis"
)

func validScenario() *Scenario {
	sc := &Scenario{
		Name:   "unit",
		Fleet:  Fleet{Epochs: 140},
		Crises: []Crisis{{Start: 60, Duration: 10, Type: "B"}},
	}
	sc.applyDefaults()
	return sc
}

func TestValidateAcceptsMinimalScenario(t *testing.T) {
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("minimal scenario rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"missing name", func(sc *Scenario) { sc.Name = "" }, "missing name"},
		{"zero epochs", func(sc *Scenario) { sc.Fleet.Epochs = 0 }, "epochs"},
		{"no crises", func(sc *Scenario) { sc.Crises = nil }, "at least one scripted crisis"},
		{"bad crisis type", func(sc *Scenario) { sc.Crises[0].Type = "Z" }, "crisis 0"},
		{"crisis past end", func(sc *Scenario) { sc.Crises[0].Start = 135 }, "past the last epoch"},
		{"crisis in warmup", func(sc *Scenario) { sc.Crises[0].Start = 10 }, "warmup"},
		{"partition without steps", func(sc *Scenario) {
			sc.Events = []Event{{At: 50, Action: ActionPartition, Shard: 0}}
		}, "steps >= 1"},
		{"partition bad shard", func(sc *Scenario) {
			sc.Events = []Event{{At: 50, Action: ActionPartition, Shard: 7, Steps: 3}}
		}, "out of range"},
		{"kill bad shard", func(sc *Scenario) {
			sc.Events = []Event{{At: 50, Action: ActionKillShard, Shard: -1}}
		}, "out of range"},
		{"event outside run", func(sc *Scenario) {
			sc.Events = []Event{{At: 200, Action: ActionKillShard, Shard: 0}}
		}, "outside the run"},
		{"unknown action", func(sc *Scenario) {
			sc.Events = []Event{{At: 50, Action: "reboot_rack", Shard: 0}}
		}, "unknown action"},
		{"restart before checkpoint", func(sc *Scenario) {
			sc.Events = []Event{{At: 10, Action: ActionRestartCoordinator}}
		}, "precedes the first checkpoint"},
		{"detect bad crisis index", func(sc *Scenario) {
			sc.Expect.Detect = []Detect{{Crisis: 3, By: 70}}
		}, "references crisis"},
		{"detect deadline before start", func(sc *Scenario) {
			sc.Expect.Detect = []Detect{{Crisis: 0, By: 60}}
		}, "not after crisis start"},
		{"detect deadline outside run", func(sc *Scenario) {
			sc.Expect.Detect = []Detect{{Crisis: 0, By: 150}}
		}, "outside the run"},
		{"accuracy out of band", func(sc *Scenario) {
			acc := 1.5
			sc.Expect.MinKnownAccuracy = &acc
		}, "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScenario()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "typo.json")
	body := `{"name":"typo","fleet":{"epochs":140},"crises":[{"start":60,"duration":10,"type":"B"}],"expect":{"max_degarded_epochs":0}}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("scenario with a misspelled expectation key loaded without error")
	}
}

func TestTypeLabel(t *testing.T) {
	ty, err := crisis.ParseType("B")
	if err != nil {
		t.Fatal(err)
	}
	if got := typeLabel(ty); got != "type-B" {
		t.Fatalf("typeLabel = %q, want type-B", got)
	}
}

// TestScenarioLibrary loads and runs every committed scenario — the same
// matrix CI's scenarios job executes. A failure prints the measured result
// and each expectation violation.
func TestScenarioLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario library runs take ~1s each")
	}
	scs, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 10 {
		t.Fatalf("scenario library has %d scenarios, want at least 10", len(scs))
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			t.Logf("%s", res.Summary())
			t.Logf("detections=%v outcomes=%+v rebalances=%d zombie=%d corrupt=%d evicted=%d",
				res.Detections, res.Outcomes, res.Rebalances, res.ZombieRejected, res.CorruptFrames, res.Evicted)
			for _, f := range res.Failures {
				t.Errorf("expectation violated: %s", f)
			}
		})
	}
}
