// Package signatures implements the paper's adaptation of the signatures
// method of Cohen et al. (SOSP 2005) [6] to the datacenter setting, per the
// Appendix: metrics are aggregated across servers with quantiles; one model
// is induced per crisis (the paper grants the baseline *optimal* model
// management and selection); regularized logistic regression replaces the
// naïve Bayes classifier for metric selection; and per-metric attribution
// thresholds come from re-fitting the same classifier on each selected
// metric in isolation.
//
// A signature is a vector over metric-quantile columns with entry +1 when
// the column is in the model and attributed (beyond its threshold in the
// crisis direction), -1 when in the model but not attributed, and 0 when
// not in the model. Crises are compared by L2 distance between signatures
// built under the same model.
package signatures

import (
	"errors"
	"fmt"
	"math"

	"dcfp/internal/core"
	"dcfp/internal/logreg"
	"dcfp/internal/metrics"
	"dcfp/internal/stats"
)

// Config controls model induction.
type Config struct {
	// ModelColumns is how many metric-quantile columns each per-crisis
	// model retains (the attribution vocabulary).
	ModelColumns int
	// NormalFactor is how many normal epochs are sampled per crisis
	// epoch when forming the training set (class balance).
	NormalFactor int
}

// DefaultConfig mirrors the fingerprint setting: 30 columns per model,
// four normal epochs per crisis epoch.
func DefaultConfig() Config { return Config{ModelColumns: 30, NormalFactor: 4} }

// attribution direction and boundary for one model column.
type columnRule struct {
	col int
	// dir is +1 when larger values indicate the crisis, -1 otherwise.
	dir float64
	// boundary is the decision threshold on the raw column value.
	boundary float64
}

// Model is the per-crisis classifier the signatures method maintains.
type Model struct {
	rules []columnRule
	width int
}

// BuildModel induces the model of one crisis: logistic regression with L1
// regularization over quantile rows (crisis epochs vs. preceding normal
// epochs), keeping the top cfg.ModelColumns columns, each with a
// single-feature threshold.
func BuildModel(track *metrics.QuantileTrack, crisisEpochs, normalEpochs []metrics.Epoch, cfg Config) (*Model, error) {
	if track == nil {
		return nil, errors.New("signatures: nil track")
	}
	if cfg.ModelColumns <= 0 {
		return nil, fmt.Errorf("signatures: ModelColumns %d must be positive", cfg.ModelColumns)
	}
	if len(crisisEpochs) == 0 || len(normalEpochs) == 0 {
		return nil, errors.New("signatures: need both crisis and normal epochs")
	}
	var x [][]float64
	var y []int
	add := func(eps []metrics.Epoch, label int) error {
		for _, e := range eps {
			row, err := track.EpochRow(e)
			if err != nil {
				return fmt.Errorf("signatures: epoch %d: %w", e, err)
			}
			x = append(x, append([]float64(nil), row...))
			y = append(y, label)
		}
		return nil
	}
	if err := add(crisisEpochs, 1); err != nil {
		return nil, err
	}
	if err := add(normalEpochs, 0); err != nil {
		return nil, err
	}

	cols, _, err := logreg.SelectTopK(x, y, cfg.ModelColumns)
	if err != nil {
		return nil, fmt.Errorf("signatures: model induction: %w", err)
	}

	m := &Model{width: track.NumMetrics() * metrics.NumQuantiles}
	for _, col := range cols {
		rule, err := fitColumnRule(x, y, col)
		if err != nil {
			continue // degenerate column; drop it from the model
		}
		m.rules = append(m.rules, rule)
	}
	if len(m.rules) == 0 {
		return nil, errors.New("signatures: no usable columns survived threshold fitting")
	}
	return m, nil
}

// fitColumnRule refits the classifier on a single column to obtain the
// attribution threshold: the decision boundary -b/w and the direction
// sign(w).
func fitColumnRule(x [][]float64, y []int, col int) (columnRule, error) {
	single := make([][]float64, len(x))
	for i := range x {
		single[i] = []float64{x[i][col]}
	}
	mod, err := logreg.Train(single, y, logreg.DefaultOptions(0.001))
	if err != nil {
		return columnRule{}, err
	}
	w := mod.Weights[0]
	if w == 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return columnRule{}, errors.New("signatures: flat column")
	}
	return columnRule{col: col, dir: math.Copysign(1, w), boundary: -mod.Bias / w}, nil
}

// Columns returns the metric-quantile columns in the model vocabulary.
func (m *Model) Columns() []int {
	out := make([]int, len(m.rules))
	for i, r := range m.rules {
		out[i] = r.col
	}
	return out
}

// EpochSignature maps one raw quantile row to the {-1, 0, +1} signature
// under this model: +1 attributed, -1 in-model but unattributed, 0 out of
// vocabulary.
func (m *Model) EpochSignature(row []float64) ([]float64, error) {
	if len(row) != m.width {
		return nil, fmt.Errorf("signatures: row width %d, want %d", len(row), m.width)
	}
	sig := make([]float64, m.width)
	for _, r := range m.rules {
		v := row[r.col]
		if r.dir*(v-r.boundary) > 0 {
			sig[r.col] = 1
		} else {
			sig[r.col] = -1
		}
	}
	return sig, nil
}

// CrisisSignature averages epoch signatures over the summary window
// anchored at the detected start, truncated at upTo.
func (m *Model) CrisisSignature(track *metrics.QuantileTrack, detectedStart metrics.Epoch, r core.SummaryRange, upTo metrics.Epoch) ([]float64, error) {
	lo := detectedStart - metrics.Epoch(r.Before)
	hi := detectedStart + metrics.Epoch(r.After)
	if upTo < hi {
		hi = upTo
	}
	var sigs [][]float64
	for e := lo; e <= hi; e++ {
		if e < 0 || int(e) >= track.NumEpochs() {
			continue
		}
		row, err := track.EpochRow(e)
		if err != nil {
			return nil, err
		}
		s, err := m.EpochSignature(row)
		if err != nil {
			return nil, err
		}
		sigs = append(sigs, s)
	}
	if len(sigs) == 0 {
		return nil, fmt.Errorf("signatures: summary window [%d,%d] has no epochs", lo, hi)
	}
	return stats.MeanVector(sigs)
}

// Distance compares two crises under this model: the L2 distance between
// their signatures. The signatures method identifies a new crisis against
// past crisis c by computing both signatures under c's model.
func (m *Model) Distance(track *metrics.QuantileTrack, startA, startB metrics.Epoch, r core.SummaryRange, upToA, upToB metrics.Epoch) (float64, error) {
	a, err := m.CrisisSignature(track, startA, r, upToA)
	if err != nil {
		return 0, err
	}
	b, err := m.CrisisSignature(track, startB, r, upToB)
	if err != nil {
		return 0, err
	}
	return stats.L2Distance(a, b)
}
