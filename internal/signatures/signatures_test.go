package signatures

import (
	"math/rand"
	"testing"

	"dcfp/internal/core"
	"dcfp/internal/metrics"
)

// synthTrack builds a track of nm metrics over n epochs. Crisis windows
// push selected columns up or down; everything else is N(100, 5) noise.
type bump struct {
	start, end int
	cols       map[int]float64 // column -> multiplier
}

func synthTrack(t *testing.T, nm, n int, bumps []bump, seed int64) *metrics.QuantileTrack {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr, err := metrics.NewQuantileTrack(nm)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < n; e++ {
		row := make([][3]float64, nm)
		for m := 0; m < nm; m++ {
			for qi := 0; qi < metrics.NumQuantiles; qi++ {
				v := 100 + rng.NormFloat64()*5
				col := m*metrics.NumQuantiles + qi
				for _, b := range bumps {
					if e >= b.start && e <= b.end {
						if f, ok := b.cols[col]; ok {
							v *= f
						}
					}
				}
				row[m][qi] = v
			}
		}
		if err := tr.AppendEpoch(row); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func epochs(lo, hi int) []metrics.Epoch {
	var out []metrics.Epoch
	for e := lo; e <= hi; e++ {
		out = append(out, metrics.Epoch(e))
	}
	return out
}

func TestBuildModelValidation(t *testing.T) {
	tr := synthTrack(t, 3, 50, nil, 1)
	if _, err := BuildModel(nil, epochs(1, 2), epochs(3, 4), DefaultConfig()); err == nil {
		t.Fatal("want nil-track error")
	}
	if _, err := BuildModel(tr, nil, epochs(3, 4), DefaultConfig()); err == nil {
		t.Fatal("want no-crisis-epochs error")
	}
	if _, err := BuildModel(tr, epochs(1, 2), nil, DefaultConfig()); err == nil {
		t.Fatal("want no-normal-epochs error")
	}
	bad := DefaultConfig()
	bad.ModelColumns = 0
	if _, err := BuildModel(tr, epochs(1, 2), epochs(3, 4), bad); err == nil {
		t.Fatal("want config error")
	}
	if _, err := BuildModel(tr, epochs(999, 1000), epochs(3, 4), DefaultConfig()); err == nil {
		t.Fatal("want epoch-range error")
	}
}

func TestModelSelectsCrisisColumns(t *testing.T) {
	// Crisis at epochs 30..40 triples columns 3 and 7.
	b := bump{start: 30, end: 40, cols: map[int]float64{3: 3, 7: 3}}
	tr := synthTrack(t, 5, 100, []bump{b}, 2)
	cfg := Config{ModelColumns: 4, NormalFactor: 4}
	m, err := BuildModel(tr, epochs(30, 40), epochs(0, 29), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, c := range m.Columns() {
		got[c] = true
	}
	if !got[3] || !got[7] {
		t.Fatalf("model columns = %v, want 3 and 7", m.Columns())
	}
}

func TestEpochSignatureAlphabet(t *testing.T) {
	b := bump{start: 30, end: 40, cols: map[int]float64{3: 3}}
	tr := synthTrack(t, 5, 100, []bump{b}, 3)
	m, err := BuildModel(tr, epochs(30, 40), epochs(0, 29), Config{ModelColumns: 2, NormalFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tr.EpochRow(35) // in crisis
	sig, err := m.EpochSignature(row)
	if err != nil {
		t.Fatal(err)
	}
	inModel := map[int]bool{}
	for _, c := range m.Columns() {
		inModel[c] = true
	}
	for col, v := range sig {
		switch {
		case !inModel[col] && v != 0:
			t.Fatalf("col %d out of model has value %v", col, v)
		case inModel[col] && v != 1 && v != -1:
			t.Fatalf("col %d in model has value %v", col, v)
		}
	}
	if sig[3] != 1 {
		t.Fatalf("crisis column not attributed: %v", sig[3])
	}
	if _, err := m.EpochSignature([]float64{1}); err == nil {
		t.Fatal("want width error")
	}
}

func TestCrisisSignatureAndDistance(t *testing.T) {
	// Two crises of the same pattern and one different.
	same1 := bump{start: 30, end: 38, cols: map[int]float64{3: 3, 7: 3}}
	same2 := bump{start: 60, end: 68, cols: map[int]float64{3: 3, 7: 3}}
	diff := bump{start: 90, end: 98, cols: map[int]float64{11: 3, 13: 0.2}}
	tr := synthTrack(t, 6, 130, []bump{same1, same2, diff}, 4)
	m, err := BuildModel(tr, epochs(30, 38), epochs(5, 25), Config{ModelColumns: 4, NormalFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := core.DefaultSummaryRange()
	dSame, err := m.Distance(tr, 30, 60, r, 38, 68)
	if err != nil {
		t.Fatal(err)
	}
	dDiff, err := m.Distance(tr, 30, 90, r, 38, 98)
	if err != nil {
		t.Fatal(err)
	}
	if dSame >= dDiff {
		t.Fatalf("same-type distance %v >= different-type %v", dSame, dDiff)
	}
}

func TestCrisisSignatureWindowErrors(t *testing.T) {
	b := bump{start: 30, end: 40, cols: map[int]float64{3: 3}}
	tr := synthTrack(t, 5, 100, []bump{b}, 5)
	m, err := BuildModel(tr, epochs(30, 40), epochs(0, 29), Config{ModelColumns: 2, NormalFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CrisisSignature(tr, 5000, core.DefaultSummaryRange(), 5004); err == nil {
		t.Fatal("want out-of-range error")
	}
	// Truncated window works.
	sig, err := m.CrisisSignature(tr, 30, core.DefaultSummaryRange(), 30)
	if err != nil || len(sig) != tr.NumMetrics()*metrics.NumQuantiles {
		t.Fatalf("truncated signature: %v, %v", len(sig), err)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ModelColumns != 30 || cfg.NormalFactor != 4 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
}
