package sla

import (
	"math"
	"reflect"
	"testing"
)

func maskedConfig() Config {
	return Config{
		KPIs: []KPI{
			{Name: "latency", Metric: 0, Threshold: 100},
			{Name: "queue", Metric: 1, Threshold: 50},
		},
		CrisisFraction: 0.10,
	}
}

func TestEvaluateMaskedMatchesEvaluateIntoWhenAllReporting(t *testing.T) {
	cfg := maskedConfig()
	values := [][]float64{
		{150, 10}, {90, 10}, {90, 60}, {90, 10}, {90, 10},
		{90, 10}, {90, 10}, {90, 10}, {90, 10}, {90, 10},
	}
	reporting := make([]bool, len(values))
	for i := range reporting {
		reporting[i] = true
	}
	violA := make([]bool, len(values))
	violB := make([]bool, len(values))
	want, err := cfg.EvaluateInto(values, violA)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.EvaluateMasked(values, violB, reporting)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("masked status %+v, unmasked %+v", got, want)
	}
	if !reflect.DeepEqual(violA, violB) {
		t.Fatalf("masked viol %v, unmasked %v", violB, violA)
	}
}

func TestEvaluateMaskedExcludesNonReportingMachines(t *testing.T) {
	cfg := maskedConfig()
	// 2 reporting machines, 1 violating: 50% >= 10% -> crisis over the
	// reporting set; the 8 masked machines are out of the denominator.
	values := make([][]float64, 10)
	reporting := make([]bool, 10)
	values[0] = []float64{150, 10}
	values[1] = []float64{90, 10}
	reporting[0], reporting[1] = true, true
	for i := 2; i < 10; i++ {
		values[i] = nil // machine down: no row at all
	}
	viol := make([]bool, 10)
	st, err := cfg.EvaluateMasked(values, viol, reporting)
	if err != nil {
		t.Fatal(err)
	}
	if st.Machines != 2 {
		t.Fatalf("Machines = %d, want 2 (reporting only)", st.Machines)
	}
	if st.ViolatingAny != 1 || !st.InCrisis {
		t.Fatalf("status %+v, want 1 violator and InCrisis over the reporting set", st)
	}
	if !viol[0] || viol[1] {
		t.Fatalf("viol = %v, want [true false ...]", viol[:2])
	}
	for i := 2; i < 10; i++ {
		if viol[i] {
			t.Fatalf("masked machine %d marked violating", i)
		}
	}
}

func TestEvaluateMaskedNonFiniteNeverViolates(t *testing.T) {
	cfg := maskedConfig()
	values := [][]float64{
		{math.Inf(1), 10},  // corrupt +Inf latency: not an SLA breach
		{math.NaN(), 10},   // blanked latency: not a breach
		{90, math.Inf(-1)}, // corrupt -Inf queue: not a breach
		{90, 10},
	}
	reporting := []bool{true, true, true, true}
	st, err := cfg.EvaluateMasked(values, nil, reporting)
	if err != nil {
		t.Fatal(err)
	}
	if st.ViolatingAny != 0 || st.InCrisis {
		t.Fatalf("status %+v, want no violations from non-finite samples", st)
	}
	if st.Machines != 4 {
		t.Fatalf("Machines = %d, want 4", st.Machines)
	}
}

func TestEvaluateMaskedZeroReportingIsNotACrisis(t *testing.T) {
	cfg := maskedConfig()
	values := make([][]float64, 5)
	reporting := make([]bool, 5)
	st, err := cfg.EvaluateMasked(values, nil, reporting)
	if err != nil {
		t.Fatal(err)
	}
	if st.InCrisis {
		t.Fatal("zero reporting machines must not satisfy the crisis rule")
	}
	if st.Machines != 0 || st.ViolatingAny != 0 {
		t.Fatalf("status %+v, want empty", st)
	}
}

func TestMergeStatusesZeroMachinesIsNotACrisis(t *testing.T) {
	cfg := maskedConfig()
	st := cfg.MergeStatuses([]EpochStatus{
		{ViolatingPerKPI: []int{0, 0}},
		{ViolatingPerKPI: []int{0, 0}},
	})
	if st.InCrisis {
		t.Fatal("merging empty partials must not declare a crisis")
	}
}

func TestEvaluateMaskedLengthMismatch(t *testing.T) {
	cfg := maskedConfig()
	if _, err := cfg.EvaluateMasked(make([][]float64, 3), nil, make([]bool, 2)); err == nil {
		t.Fatal("want error for reporting length mismatch")
	}
	if _, err := cfg.EvaluateMasked(make([][]float64, 3), make([]bool, 2), make([]bool, 3)); err == nil {
		t.Fatal("want error for viol length mismatch")
	}
}
