package sla

import (
	"math/rand"
	"reflect"
	"testing"
)

func shardTestConfig() Config {
	return Config{
		KPIs: []KPI{
			{Name: "lat", Metric: 0, Threshold: 100},
			{Name: "q", Metric: 1, Threshold: 50},
		},
		CrisisFraction: 0.10,
	}
}

func TestEvaluateIntoFillsFlags(t *testing.T) {
	c := shardTestConfig()
	values := [][]float64{
		{50, 10},  // clean
		{150, 10}, // KPI 0
		{50, 60},  // KPI 1
		{150, 60}, // both, still one machine
	}
	viol := make([]bool, len(values))
	st, err := c.EvaluateInto(values, viol)
	if err != nil {
		t.Fatal(err)
	}
	wantFlags := []bool{false, true, true, true}
	if !reflect.DeepEqual(viol, wantFlags) {
		t.Fatalf("viol = %v, want %v", viol, wantFlags)
	}
	if st.ViolatingAny != 3 || st.ViolatingPerKPI[0] != 2 || st.ViolatingPerKPI[1] != 2 {
		t.Fatalf("status = %+v", st)
	}
	// The flags must match MachineViolates row by row.
	for i, row := range values {
		if viol[i] != c.MachineViolates(row) {
			t.Fatalf("machine %d flag disagrees with MachineViolates", i)
		}
	}
}

func TestEvaluateIntoLengthMismatch(t *testing.T) {
	c := shardTestConfig()
	if _, err := c.EvaluateInto([][]float64{{1, 2}}, make([]bool, 2)); err == nil {
		t.Fatal("want viol-length error")
	}
}

// TestMergeStatusesMatchesWholeEvaluate splits machine sets every which way
// and requires the merged partial statuses to equal one whole evaluation.
func TestMergeStatusesMatchesWholeEvaluate(t *testing.T) {
	c := shardTestConfig()
	rng := rand.New(rand.NewSource(9))
	values := make([][]float64, 97)
	for i := range values {
		values[i] = []float64{rng.Float64() * 200, rng.Float64() * 100}
	}
	want, err := c.Evaluate(values)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 5, 8} {
		parts := make([]EpochStatus, shards)
		n := len(values)
		for w := 0; w < shards; w++ {
			lo, hi := w*n/shards, (w+1)*n/shards
			st, err := c.Evaluate(values[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			parts[w] = st
		}
		got := c.MergeStatuses(parts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged %+v != whole %+v", shards, got, want)
		}
	}
}

// TestMergeStatusesCrisisRule checks the crisis rule is re-applied over the
// summed counts, not inherited from any partial.
func TestMergeStatusesCrisisRule(t *testing.T) {
	c := shardTestConfig()
	// Partial A: 1/2 violating (locally 50% >= 10% => in crisis).
	// Partial B: 0/48 violating. Combined: 1/50 = 2% => no crisis.
	a, err := c.Evaluate([][]float64{{150, 10}, {50, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.InCrisis {
		t.Fatal("partial A should locally satisfy the crisis rule")
	}
	clean := make([][]float64, 48)
	for i := range clean {
		clean[i] = []float64{50, 10}
	}
	b, err := c.Evaluate(clean)
	if err != nil {
		t.Fatal(err)
	}
	got := c.MergeStatuses([]EpochStatus{a, b})
	if got.InCrisis {
		t.Fatalf("merged status wrongly in crisis: %+v", got)
	}
	if got.Machines != 50 || got.ViolatingAny != 1 {
		t.Fatalf("merged counts: %+v", got)
	}
}
