// Package sla models key performance indicators (KPIs), their service-level
// agreements, and the crisis-detection rule of the studied datacenter.
//
// The operators of the paper's application designate three KPIs — average
// processing time in the front end, the second stage, and one of the
// post-processing stages — each with an SLA threshold set by business
// policy. A performance crisis is declared when 10% of the machines in the
// datacenter violate any KPI SLA (§4.1). This definition is an input to the
// fingerprinting method, never tuned by it.
package sla

import (
	"errors"
	"fmt"
	"math"

	"dcfp/internal/metrics"
)

// KPI is a key performance indicator: a metric column whose per-machine
// value must stay at or below Threshold.
type KPI struct {
	// Name is a human-readable label ("frontend_latency_ms").
	Name string
	// Metric is the column index of the KPI within the metric catalog.
	Metric int
	// Threshold is the SLA bound: a machine violates this KPI when its
	// sampled value exceeds the threshold.
	Threshold float64
}

// Config couples the KPI set with the datacenter crisis rule.
type Config struct {
	KPIs []KPI
	// CrisisFraction is the fraction of machines that must violate any
	// KPI SLA for a crisis to be declared; the paper's datacenter uses
	// 0.10.
	CrisisFraction float64
}

// Validate checks the configuration against the metric catalog width.
func (c Config) Validate(numMetrics int) error {
	if len(c.KPIs) == 0 {
		return errors.New("sla: no KPIs configured")
	}
	if c.CrisisFraction <= 0 || c.CrisisFraction > 1 {
		return fmt.Errorf("sla: crisis fraction %v out of (0,1]", c.CrisisFraction)
	}
	for i, k := range c.KPIs {
		if k.Metric < 0 || k.Metric >= numMetrics {
			return fmt.Errorf("sla: KPI %d (%s) references metric %d outside catalog of %d", i, k.Name, k.Metric, numMetrics)
		}
	}
	return nil
}

// EpochStatus summarizes SLA compliance of the datacenter for one epoch.
type EpochStatus struct {
	// ViolatingPerKPI[i] is the number of machines violating KPI i.
	ViolatingPerKPI []int
	// ViolatingAny is the number of machines violating at least one KPI.
	ViolatingAny int
	// Machines is the total number of machines evaluated.
	Machines int
	// InCrisis reports whether the crisis rule fired this epoch.
	InCrisis bool
}

// MachineViolates reports whether one machine's sample row breaks any KPI.
func (c Config) MachineViolates(row []float64) bool {
	for _, k := range c.KPIs {
		if row[k.Metric] > k.Threshold {
			return true
		}
	}
	return false
}

// Evaluate applies the KPI SLAs to every machine's sample row for an epoch
// (values[machine][metric]) and applies the crisis rule.
func (c Config) Evaluate(values [][]float64) (EpochStatus, error) {
	return c.EvaluateInto(values, nil)
}

// EvaluateInto is Evaluate that additionally records each machine's any-KPI
// violation flag into viol[i] when viol is non-nil (it must then have
// len(values) entries). It exists so the one pass over the samples serves
// both the crisis rule and the per-machine labels that feature selection
// consumes, and so sharded evaluation can fill disjoint segments of one
// flag slice concurrently.
func (c Config) EvaluateInto(values [][]float64, viol []bool) (EpochStatus, error) {
	st := EpochStatus{
		ViolatingPerKPI: make([]int, len(c.KPIs)),
		Machines:        len(values),
	}
	if len(values) == 0 {
		return st, errors.New("sla: no machines to evaluate")
	}
	if viol != nil && len(viol) != len(values) {
		return st, fmt.Errorf("sla: viol has %d entries for %d machines", len(viol), len(values))
	}
	for m, row := range values {
		any := false
		for i, k := range c.KPIs {
			if k.Metric >= len(row) {
				return st, fmt.Errorf("sla: KPI %s metric %d outside row of %d", k.Name, k.Metric, len(row))
			}
			if row[k.Metric] > k.Threshold {
				st.ViolatingPerKPI[i]++
				any = true
			}
		}
		if any {
			st.ViolatingAny++
		}
		if viol != nil {
			viol[m] = any
		}
	}
	st.InCrisis = float64(st.ViolatingAny) >= c.CrisisFraction*float64(st.Machines)
	return st, nil
}

// EvaluateMasked is EvaluateInto over only the machines whose reporting flag
// is set: masked machines contribute to no counts (including the crisis-rule
// denominator) and get viol[m] = false. Non-finite KPI samples on reporting
// machines never count as violations — a corrupt +Inf latency is a telemetry
// fault, not an SLA breach. With zero reporting machines there is no
// evidence either way, so InCrisis is false; callers (the monitor) flag such
// epochs as degraded instead. On fully reporting, finite input it returns
// exactly what EvaluateInto returns.
func (c Config) EvaluateMasked(values [][]float64, viol, reporting []bool) (EpochStatus, error) {
	st := EpochStatus{ViolatingPerKPI: make([]int, len(c.KPIs))}
	if len(reporting) != len(values) {
		return st, fmt.Errorf("sla: reporting has %d entries for %d machines", len(reporting), len(values))
	}
	if viol != nil && len(viol) != len(values) {
		return st, fmt.Errorf("sla: viol has %d entries for %d machines", len(viol), len(values))
	}
	for m, row := range values {
		if viol != nil {
			viol[m] = false
		}
		if !reporting[m] {
			continue
		}
		st.Machines++
		any := false
		for i, k := range c.KPIs {
			if k.Metric >= len(row) {
				return st, fmt.Errorf("sla: KPI %s metric %d outside row of %d", k.Name, k.Metric, len(row))
			}
			v := row[k.Metric]
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > k.Threshold {
				st.ViolatingPerKPI[i]++
				any = true
			}
		}
		if any {
			st.ViolatingAny++
		}
		if viol != nil {
			viol[m] = any
		}
	}
	st.InCrisis = st.Machines > 0 && float64(st.ViolatingAny) >= c.CrisisFraction*float64(st.Machines)
	return st, nil
}

// MergeStatuses combines partial epoch statuses computed over disjoint
// machine subsets (one per worker shard) into the datacenter-wide status,
// re-applying the crisis rule over the summed counts. Counts are sums, so
// the merged status is identical to evaluating all machines in one call,
// regardless of how the machines were split. Zero evaluated machines (every
// shard fully masked) is not a crisis — without the guard the >= comparison
// against 0 would fire vacuously.
func (c Config) MergeStatuses(parts []EpochStatus) EpochStatus {
	st := EpochStatus{ViolatingPerKPI: make([]int, len(c.KPIs))}
	for _, p := range parts {
		for i, v := range p.ViolatingPerKPI {
			st.ViolatingPerKPI[i] += v
		}
		st.ViolatingAny += p.ViolatingAny
		st.Machines += p.Machines
	}
	st.InCrisis = st.Machines > 0 && float64(st.ViolatingAny) >= c.CrisisFraction*float64(st.Machines)
	return st
}

// Episode is a contiguous run of crisis epochs, inclusive on both ends.
type Episode struct {
	Start metrics.Epoch
	End   metrics.Epoch
}

// Len reports the number of epochs the episode spans.
func (e Episode) Len() int { return int(e.End-e.Start) + 1 }

// Contains reports whether epoch t falls inside the episode.
func (e Episode) Contains(t metrics.Epoch) bool { return t >= e.Start && t <= e.End }

// Episodes extracts crisis episodes from a per-epoch in-crisis series.
// Runs separated by at most mergeGap non-crisis epochs are merged (a
// crisis briefly dipping below the 10% rule is still one crisis), and
// episodes shorter than minLen epochs are dropped — the paper defines a
// crisis as a *prolonged* SLA violation.
func Episodes(inCrisis []bool, mergeGap, minLen int) []Episode {
	if mergeGap < 0 {
		mergeGap = 0
	}
	if minLen < 1 {
		minLen = 1
	}
	var raw []Episode
	start := -1
	for e, c := range inCrisis {
		switch {
		case c && start < 0:
			start = e
		case !c && start >= 0:
			raw = append(raw, Episode{metrics.Epoch(start), metrics.Epoch(e - 1)})
			start = -1
		}
	}
	if start >= 0 {
		raw = append(raw, Episode{metrics.Epoch(start), metrics.Epoch(len(inCrisis) - 1)})
	}
	// Merge near-adjacent runs.
	var merged []Episode
	for _, ep := range raw {
		if n := len(merged); n > 0 && int(ep.Start-merged[n-1].End)-1 <= mergeGap {
			merged[n-1].End = ep.End
			continue
		}
		merged = append(merged, ep)
	}
	// Drop too-short episodes.
	out := merged[:0]
	for _, ep := range merged {
		if ep.Len() >= minLen {
			out = append(out, ep)
		}
	}
	return out
}

// NormalPredicate returns a predicate over epochs that is true exactly when
// the epoch is not inside (or within pad epochs of) any episode. It is the
// crisis-exclusion filter used when estimating hot/cold thresholds (§3.3)
// and when selecting normal feature-selection samples (§3.4).
func NormalPredicate(eps []Episode, pad int) func(metrics.Epoch) bool {
	return func(t metrics.Epoch) bool {
		for _, ep := range eps {
			if t >= ep.Start-metrics.Epoch(pad) && t <= ep.End+metrics.Epoch(pad) {
				return false
			}
		}
		return true
	}
}
