package sla

import (
	"math/rand"
	"testing"

	"dcfp/internal/metrics"
)

func cfg() Config {
	return Config{
		KPIs: []KPI{
			{Name: "fe_latency", Metric: 0, Threshold: 100},
			{Name: "proc_latency", Metric: 1, Threshold: 200},
		},
		CrisisFraction: 0.10,
	}
}

func TestConfigValidate(t *testing.T) {
	c := cfg()
	if err := c.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := (Config{}).Validate(2); err == nil {
		t.Fatal("want error on no KPIs")
	}
	bad := cfg()
	bad.CrisisFraction = 0
	if err := bad.Validate(2); err == nil {
		t.Fatal("want error on zero fraction")
	}
	bad = cfg()
	bad.CrisisFraction = 1.5
	if err := bad.Validate(2); err == nil {
		t.Fatal("want error on fraction > 1")
	}
	bad = cfg()
	bad.KPIs[1].Metric = 7
	if err := bad.Validate(2); err == nil {
		t.Fatal("want error on out-of-catalog metric")
	}
}

func TestMachineViolates(t *testing.T) {
	c := cfg()
	if c.MachineViolates([]float64{50, 150}) {
		t.Fatal("compliant machine flagged")
	}
	if !c.MachineViolates([]float64{150, 50}) {
		t.Fatal("violating machine missed")
	}
	if c.MachineViolates([]float64{100, 200}) {
		t.Fatal("threshold is inclusive; at-threshold must comply")
	}
}

func TestEvaluateCrisisRule(t *testing.T) {
	c := cfg()
	// 20 machines; exactly 2 violating = 10% -> crisis (>= fraction).
	vals := make([][]float64, 20)
	for i := range vals {
		vals[i] = []float64{50, 50}
	}
	vals[3] = []float64{500, 50}
	vals[7] = []float64{50, 500}
	st, err := c.Evaluate(vals)
	if err != nil {
		t.Fatal(err)
	}
	if st.Machines != 20 || st.ViolatingAny != 2 {
		t.Fatalf("status = %+v", st)
	}
	if st.ViolatingPerKPI[0] != 1 || st.ViolatingPerKPI[1] != 1 {
		t.Fatalf("per-KPI = %v", st.ViolatingPerKPI)
	}
	if !st.InCrisis {
		t.Fatal("10%% violating should trigger crisis")
	}
	// One violator: below threshold.
	vals[7] = []float64{50, 50}
	st, err = c.Evaluate(vals)
	if err != nil {
		t.Fatal(err)
	}
	if st.InCrisis {
		t.Fatal("5%% violating should not trigger crisis")
	}
}

func TestEvaluateCountsMachineOnce(t *testing.T) {
	c := cfg()
	vals := [][]float64{{500, 500}, {50, 50}}
	st, err := c.Evaluate(vals)
	if err != nil {
		t.Fatal(err)
	}
	if st.ViolatingAny != 1 {
		t.Fatalf("ViolatingAny = %d; machine violating both KPIs must count once", st.ViolatingAny)
	}
	if st.ViolatingPerKPI[0] != 1 || st.ViolatingPerKPI[1] != 1 {
		t.Fatalf("per-KPI = %v", st.ViolatingPerKPI)
	}
}

func TestEvaluateErrors(t *testing.T) {
	c := cfg()
	if _, err := c.Evaluate(nil); err == nil {
		t.Fatal("want error on no machines")
	}
	if _, err := c.Evaluate([][]float64{{1}}); err == nil {
		t.Fatal("want error on short row")
	}
}

func TestEpisodesBasic(t *testing.T) {
	in := []bool{false, true, true, false, false, true, false}
	eps := Episodes(in, 0, 1)
	if len(eps) != 2 {
		t.Fatalf("episodes = %v", eps)
	}
	if eps[0].Start != 1 || eps[0].End != 2 || eps[1].Start != 5 || eps[1].End != 5 {
		t.Fatalf("episodes = %v", eps)
	}
	if eps[0].Len() != 2 || !eps[0].Contains(2) || eps[0].Contains(3) {
		t.Fatal("episode accessors wrong")
	}
}

func TestEpisodesMergeGap(t *testing.T) {
	in := []bool{true, true, false, true, true}
	if got := Episodes(in, 0, 1); len(got) != 2 {
		t.Fatalf("no-merge episodes = %v", got)
	}
	got := Episodes(in, 1, 1)
	if len(got) != 1 || got[0].Start != 0 || got[0].End != 4 {
		t.Fatalf("merged episodes = %v", got)
	}
}

func TestEpisodesMinLen(t *testing.T) {
	in := []bool{true, false, true, true, true}
	got := Episodes(in, 0, 2)
	if len(got) != 1 || got[0].Start != 2 {
		t.Fatalf("minLen episodes = %v", got)
	}
	// Defensive defaults for nonsense arguments.
	if got := Episodes(in, -5, 0); len(got) != 2 {
		t.Fatalf("defaulted episodes = %v", got)
	}
}

func TestEpisodesTrailingOpen(t *testing.T) {
	in := []bool{false, true, true}
	got := Episodes(in, 0, 1)
	if len(got) != 1 || got[0].End != 2 {
		t.Fatalf("open-ended episode = %v", got)
	}
}

func TestEpisodesEmpty(t *testing.T) {
	if got := Episodes(nil, 0, 1); got != nil {
		t.Fatalf("Episodes(nil) = %v", got)
	}
	if got := Episodes([]bool{false, false}, 0, 1); len(got) != 0 {
		t.Fatalf("Episodes(all normal) = %v", got)
	}
}

func TestNormalPredicate(t *testing.T) {
	eps := []Episode{{Start: 10, End: 12}}
	isNormal := NormalPredicate(eps, 2)
	cases := []struct {
		e    metrics.Epoch
		want bool
	}{
		{7, true}, {8, false}, {10, false}, {12, false}, {14, false}, {15, true},
	}
	for _, c := range cases {
		if got := isNormal(c.e); got != c.want {
			t.Errorf("isNormal(%d) = %v, want %v", c.e, got, c.want)
		}
	}
	all := NormalPredicate(nil, 0)
	if !all(0) {
		t.Fatal("no episodes: everything is normal")
	}
}

// Property: merged episodes cover every crisis epoch, never overlap, and
// respect the merge-gap/min-length rules.
func TestEpisodesCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(200)
		in := make([]bool, n)
		for i := range in {
			in[i] = rng.Float64() < 0.15
		}
		gap := rng.Intn(3)
		minLen := 1 + rng.Intn(3)
		eps := Episodes(in, gap, minLen)
		for i, ep := range eps {
			if ep.Len() < minLen {
				t.Fatalf("episode %v shorter than minLen %d", ep, minLen)
			}
			if ep.Start < 0 || int(ep.End) >= n || ep.End < ep.Start {
				t.Fatalf("episode %v out of range", ep)
			}
			if !in[ep.Start] || !in[ep.End] {
				t.Fatalf("episode %v does not start/end on crisis epochs", ep)
			}
			if i > 0 {
				// Non-overlap and separation beyond the merge gap.
				sep := int(ep.Start-eps[i-1].End) - 1
				if sep <= gap {
					t.Fatalf("episodes %v and %v separated by %d <= gap %d", eps[i-1], ep, sep, gap)
				}
			}
		}
		// Every long-enough raw run must be inside some episode.
		raw := Episodes(in, 0, 1)
		for _, r := range raw {
			if r.Len() < minLen {
				continue
			}
			covered := false
			for _, ep := range eps {
				if r.Start >= ep.Start && r.End <= ep.End {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("run %v (len %d >= %d) not covered by %v", r, r.Len(), minLen, eps)
			}
		}
	}
}
