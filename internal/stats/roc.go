package stats

import (
	"math"
	"sort"
)

// ROCPoint is one operating point of a distance ROC curve: at identification
// threshold Threshold, FPR is the fraction of different-type crisis pairs
// mistakenly classified as identical, and Recall (TPR) is the fraction of
// same-type pairs correctly classified as identical (§4.3, §5.1.1).
type ROCPoint struct {
	Threshold float64
	FPR       float64
	Recall    float64
}

// ROC is a distance ROC curve over pairwise crisis distances.
type ROC struct {
	// Points are ordered by increasing FPR (equivalently, increasing
	// threshold). The curve implicitly starts at (FPR 0, Recall 0) with
	// threshold -inf and ends at (1, 1) with threshold +inf.
	Points []ROCPoint

	same, diff []float64 // sorted ascending
}

// DistanceROC builds the ROC curve from the distances between same-type
// crisis pairs (positives: should be classified identical) and
// different-type pairs (negatives). Two crises are classified identical when
// their distance is strictly below the threshold.
func DistanceROC(sameDist, diffDist []float64) ROC {
	same := append([]float64(nil), sameDist...)
	diff := append([]float64(nil), diffDist...)
	sort.Float64s(same)
	sort.Float64s(diff)

	// Candidate thresholds: just above each observed distance, so every
	// achievable (FPR, Recall) pair appears exactly once.
	cands := make([]float64, 0, len(same)+len(diff))
	cands = append(cands, same...)
	cands = append(cands, diff...)
	sort.Float64s(cands)
	cands = dedupe(cands)

	pts := make([]ROCPoint, 0, len(cands)+1)
	pts = append(pts, ROCPoint{Threshold: math.Inf(-1), FPR: 0, Recall: 0})
	for _, c := range cands {
		t := math.Nextafter(c, math.Inf(1)) // classify distance == c as identical
		pts = append(pts, ROCPoint{
			Threshold: t,
			FPR:       fracBelow(diff, t),
			Recall:    fracBelow(same, t),
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].Recall < pts[j].Recall
	})
	return ROC{Points: pts, same: same, diff: diff}
}

func dedupe(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// fracBelow returns the fraction of sorted values strictly below t.
func fracBelow(sorted []float64, t float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, t)
	return float64(i) / float64(len(sorted))
}

// AUC returns the area under the ROC curve, computed as the Mann–Whitney
// statistic P(sameDist < diffDist) + ½·P(sameDist == diffDist). 1.0 means a
// threshold exists that perfectly separates identical from distinct pairs.
func (r ROC) AUC() float64 {
	if len(r.same) == 0 || len(r.diff) == 0 {
		return math.NaN()
	}
	// Two-pointer sweep over the sorted slices: for each same-distance s,
	// count diff-distances strictly greater and equal.
	wins, ties := 0.0, 0.0
	for _, s := range r.same {
		lo := sort.SearchFloat64s(r.diff, s)
		hi := sort.SearchFloat64s(r.diff, math.Nextafter(s, math.Inf(1)))
		wins += float64(len(r.diff) - hi)
		ties += float64(hi - lo)
	}
	n := float64(len(r.same)) * float64(len(r.diff))
	return (wins + ties/2) / n
}

// ThresholdForFPR returns the largest identification threshold whose false
// positive rate is at most alpha — the paper's rule for converting the free
// parameter α into a concrete threshold T (§5.1.2).
func (r ROC) ThresholdForFPR(alpha float64) float64 {
	best := math.Inf(-1)
	for _, p := range r.Points {
		if p.FPR <= alpha && p.Threshold > best {
			best = p.Threshold
		}
	}
	if math.IsInf(best, -1) {
		// No feasible point: classify nothing as identical.
		if len(r.diff) > 0 {
			return r.diff[0] // strictly-below comparison admits nothing
		}
		return 0
	}
	return best
}

// RecallAtFPR returns the recall achieved at the threshold chosen by
// ThresholdForFPR(alpha).
func (r ROC) RecallAtFPR(alpha float64) float64 {
	t := r.ThresholdForFPR(alpha)
	return fracBelow(r.same, t)
}
