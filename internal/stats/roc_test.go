package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistanceROCPerfectSeparation(t *testing.T) {
	same := []float64{0.1, 0.2, 0.3}
	diff := []float64{1.0, 1.5, 2.0}
	roc := DistanceROC(same, diff)
	if auc := roc.AUC(); auc != 1.0 {
		t.Fatalf("AUC = %v, want 1.0", auc)
	}
	// At alpha=0 we should still achieve full recall: a threshold between
	// 0.3 and 1.0 exists.
	thr := roc.ThresholdForFPR(0)
	if thr <= 0.3 || thr > 1.0 {
		t.Fatalf("ThresholdForFPR(0) = %v, want in (0.3, 1.0]", thr)
	}
	if rec := roc.RecallAtFPR(0); rec != 1.0 {
		t.Fatalf("RecallAtFPR(0) = %v, want 1.0", rec)
	}
}

func TestDistanceROCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	same := make([]float64, 3000)
	diff := make([]float64, 3000)
	for i := range same {
		same[i] = rng.Float64()
		diff[i] = rng.Float64()
	}
	auc := DistanceROC(same, diff).AUC()
	if math.Abs(auc-0.5) > 0.03 {
		t.Fatalf("AUC on indistinguishable distributions = %v, want ~0.5", auc)
	}
}

func TestDistanceROCInverted(t *testing.T) {
	// Same-type pairs farther apart than different-type ones: AUC ~ 0.
	same := []float64{5, 6, 7}
	diff := []float64{1, 2, 3}
	if auc := DistanceROC(same, diff).AUC(); auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestDistanceROCTies(t *testing.T) {
	same := []float64{1, 1}
	diff := []float64{1, 1}
	if auc := DistanceROC(same, diff).AUC(); auc != 0.5 {
		t.Fatalf("AUC with all ties = %v, want 0.5", auc)
	}
}

func TestAUCEmptyIsNaN(t *testing.T) {
	if auc := DistanceROC(nil, []float64{1}).AUC(); !math.IsNaN(auc) {
		t.Fatalf("AUC with no positives = %v, want NaN", auc)
	}
}

func TestThresholdForFPRRespectsAlpha(t *testing.T) {
	same := []float64{0.5, 1.5, 2.5}
	diff := []float64{1.0, 2.0, 3.0, 4.0}
	roc := DistanceROC(same, diff)
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		thr := roc.ThresholdForFPR(alpha)
		fpr := fracBelow(roc.diff, thr)
		if fpr > alpha+1e-12 {
			t.Errorf("alpha=%v: threshold %v gives FPR %v > alpha", alpha, thr, fpr)
		}
	}
	// alpha=1 must admit everything.
	if rec := roc.RecallAtFPR(1); rec != 1 {
		t.Fatalf("RecallAtFPR(1) = %v, want 1", rec)
	}
}

func TestROCPointsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	same := make([]float64, 50)
	diff := make([]float64, 70)
	for i := range same {
		same[i] = rng.ExpFloat64()
	}
	for i := range diff {
		diff[i] = rng.ExpFloat64() + 0.5
	}
	roc := DistanceROC(same, diff)
	for i := 1; i < len(roc.Points); i++ {
		if roc.Points[i].FPR < roc.Points[i-1].FPR {
			t.Fatalf("FPR not monotone at %d", i)
		}
		if roc.Points[i].FPR == roc.Points[i-1].FPR &&
			roc.Points[i].Recall < roc.Points[i-1].Recall {
			t.Fatalf("Recall not monotone at %d", i)
		}
	}
}

// Property: AUC is always in [0,1] and FPR/Recall are valid probabilities.
func TestROCBoundsProperty(t *testing.T) {
	f := func(rawSame, rawDiff []float64) bool {
		same := sanitize(rawSame)
		diff := sanitize(rawDiff)
		if len(same) == 0 || len(diff) == 0 {
			return true
		}
		// Distances are non-negative in our use; take absolute values.
		for i := range same {
			same[i] = math.Abs(same[i])
		}
		for i := range diff {
			diff[i] = math.Abs(diff[i])
		}
		roc := DistanceROC(same, diff)
		auc := roc.AUC()
		if auc < 0 || auc > 1 {
			return false
		}
		for _, p := range roc.Points {
			if p.FPR < 0 || p.FPR > 1 || p.Recall < 0 || p.Recall > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting diff distances up strictly away from same distances can
// only improve (or keep) AUC.
func TestROCSeparationImprovesAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	same := make([]float64, 200)
	diff := make([]float64, 200)
	for i := range same {
		same[i] = rng.Float64()
		diff[i] = rng.Float64()
	}
	base := DistanceROC(same, diff).AUC()
	shifted := make([]float64, len(diff))
	for i, d := range diff {
		shifted[i] = d + 2 // beyond max(same)
	}
	if got := DistanceROC(same, shifted).AUC(); got < base || got != 1.0 {
		t.Fatalf("shifted AUC = %v (base %v), want 1.0", got, base)
	}
}
