// Package stats provides the descriptive statistics, vector operations and
// ROC/AUC machinery used throughout the fingerprinting pipeline.
//
// Everything here is deliberately dependency-free: the paper's method needs
// only order statistics (quantiles are the fingerprint's summarization
// primitive, §3.2), L2 distances between fingerprint vectors (§3.5), and
// ROC curves for choosing identification thresholds and reporting
// discriminative power (§4.3, §5.1.1).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs.
// It returns an error on empty input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already checked len(xs) > 0.
// It panics on empty input.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Variance returns the population variance of xs (dividing by N).
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile on an already ascending-sorted slice.
// It avoids the copy and sort and is the hot path for threshold updates.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	n := len(sorted)
	if n == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	if n == 1 {
		return sorted[0], nil
	}
	// Linear interpolation between closest ranks (the "C = 1" variant):
	// rank r = p/100 * (n-1).
	r := p / 100 * float64(n-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := r - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// PercentileNearestRank returns the p-th percentile by the nearest-rank
// definition the paper uses in §3.2: order the N values and select the
// ceil(N*p/100)-th one. xs is not modified.
func PercentileNearestRank(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(float64(len(sorted)) * p / 100))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// Quantiles returns the q-quantiles (each q in [0,1]) of xs with linear
// interpolation, sorting once. xs is not modified.
func Quantiles(xs []float64, qs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := PercentileSorted(sorted, q*100)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
