package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSum(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Sum = %v, want 6.5", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{2, 4, 6})
	if err != nil || m != 4 {
		t.Fatalf("Mean = %v, %v; want 4, nil", m, err)
	}
}

func TestMustMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustMean(nil) did not panic")
		}
	}()
	MustMean(nil)
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", v)
	}
	s, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err == nil {
		t.Fatal("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Fatal("Max(nil) should error")
	}
}

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("Percentile(25) = %v, want 2.5", got)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Fatal("want range error for p=-1")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Fatal("want range error for p=101")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{5, 15}, {30, 20}, {40, 20}, {50, 35}, {100, 50}, {0, 15},
	}
	for _, c := range cases {
		got, err := PercentileNearestRank(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("PercentileNearestRank(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Fatalf("Median odd = %v, %v", m, err)
	}
	m, err = Median([]float64{4, 1, 3, 2})
	if err != nil || m != 2.5 {
		t.Fatalf("Median even = %v, %v", m, err)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	qs, err := Quantiles(xs, []float64{0.25, 0.5, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 2 || qs[1] != 3 || !almostEqual(qs[2], 4.8, 1e-12) {
		t.Fatalf("Quantiles = %v", qs)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp wrong")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7.5 {
			v, err := Percentile(xs, p)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		lo, _ := Percentile(xs, 0)
		hi, _ := Percentile(xs, 100)
		return lo == mn && hi == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		m := MustMean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative and zero for constant slices.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		v, err := Variance(xs)
		return err == nil && v >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	v, err := Variance([]float64{4, 4, 4, 4})
	if err != nil || v != 0 {
		t.Fatalf("Variance(const) = %v, %v", v, err)
	}
}

// sanitize maps arbitrary quick-generated floats into a finite, bounded set
// so properties are not vacuously broken by NaN/Inf inputs.
func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, x := range raw {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, Clamp(x, -1e9, 1e9))
	}
	return out
}

// Cross-check interpolated percentile against a brute-force empirical CDF on
// random data: PercentileSorted(sorted, p) must lie between the floor/ceil
// order statistics.
func TestPercentileSortedWithinOrderStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sort.Float64s(xs)
		for p := 0.0; p <= 100; p += 12.5 {
			v, err := PercentileSorted(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			r := p / 100 * float64(n-1)
			lo := xs[int(math.Floor(r))]
			hi := xs[int(math.Ceil(r))]
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("p=%v: %v not in [%v,%v]", p, v, lo, hi)
			}
		}
	}
}
