package stats

import (
	"fmt"
	"math"
)

// L2Distance returns the Euclidean distance between equal-length vectors a
// and b. Fingerprint similarity in §3.5 is exactly this distance on crisis
// fingerprint summaries.
func L2Distance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: vector length mismatch %d != %d", len(a), len(b))
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss), nil
}

// L1Distance returns the Manhattan distance between a and b.
func L1Distance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: vector length mismatch %d != %d", len(a), len(b))
	}
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s, nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: vector length mismatch %d != %d", len(a), len(b))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	ss := 0.0
	for _, x := range a {
		ss += x * x
	}
	return math.Sqrt(ss)
}

// Scale multiplies every element of a by k in place and returns a.
func Scale(a []float64, k float64) []float64 {
	for i := range a {
		a[i] *= k
	}
	return a
}

// AddInto adds b into a element-wise (a += b) and returns a.
func AddInto(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: vector length mismatch %d != %d", len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return a, nil
}

// MeanVector averages a set of equal-length vectors element-wise. This is
// how consecutive epoch fingerprints are combined into a crisis fingerprint
// (§3.5): each element becomes columnSum/epochCount.
func MeanVector(vs [][]float64) ([]float64, error) {
	if len(vs) == 0 {
		return nil, ErrEmpty
	}
	n := len(vs[0])
	out := make([]float64, n)
	for _, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("stats: vector length mismatch %d != %d", len(v), n)
		}
		for i, x := range v {
			out[i] += x
		}
	}
	k := 1 / float64(len(vs))
	for i := range out {
		out[i] *= k
	}
	return out, nil
}
