package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestL2Distance(t *testing.T) {
	d, err := L2Distance([]float64{0, 0}, []float64{3, 4})
	if err != nil || d != 5 {
		t.Fatalf("L2Distance = %v, %v; want 5", d, err)
	}
}

func TestL2DistanceMismatch(t *testing.T) {
	if _, err := L2Distance([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestL1Distance(t *testing.T) {
	d, err := L1Distance([]float64{1, -2}, []float64{-1, 2})
	if err != nil || d != 6 {
		t.Fatalf("L1Distance = %v, %v; want 6", d, err)
	}
	if _, err := L1Distance([]float64{1}, nil); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestDotAndNorm(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Fatalf("Dot = %v, %v", d, err)
	}
	if _, err := Dot([]float64{1}, nil); err == nil {
		t.Fatal("want length-mismatch error")
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Fatalf("Norm2 = %v", n)
	}
}

func TestScaleAddInto(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 3)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("Scale = %v", a)
	}
	if _, err := AddInto(a, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if a[0] != 4 || a[1] != 7 {
		t.Fatalf("AddInto = %v", a)
	}
	if _, err := AddInto(a, []float64{1}); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestMeanVector(t *testing.T) {
	m, err := MeanVector([][]float64{{1, -1, 0}, {1, 1, 0}, {1, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1}
	for i := range want {
		if !almostEqual(m[i], want[i], 1e-12) {
			t.Fatalf("MeanVector = %v, want %v", m, want)
		}
	}
	if _, err := MeanVector(nil); err != ErrEmpty {
		t.Fatalf("MeanVector(nil) err = %v", err)
	}
	if _, err := MeanVector([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("want ragged-input error")
	}
}

// Property: L2 distance satisfies symmetry, identity and triangle inequality.
func TestL2MetricProperties(t *testing.T) {
	f := func(ra, rb, rc [4]float64) bool {
		a, b, c := ra[:], rb[:], rc[:]
		for _, v := range [][]float64{a, b, c} {
			for i := range v {
				if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
					v[i] = 0
				}
				v[i] = Clamp(v[i], -1e6, 1e6)
			}
		}
		dab, _ := L2Distance(a, b)
		dba, _ := L2Distance(b, a)
		daa, _ := L2Distance(a, a)
		dac, _ := L2Distance(a, c)
		dcb, _ := L2Distance(c, b)
		return dab == dba && daa == 0 && dab <= dac+dcb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
