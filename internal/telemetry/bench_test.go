package telemetry

import (
	"io"
	"testing"
	"time"
)

// The registry sits on the monitor's per-epoch fast path, so its primitives
// are benchmarked directly; BenchmarkObserveEpoch in internal/monitor
// measures the end-to-end overhead (< 5% is the budget).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c_total", "h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("g", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "h", TimeBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "h", TimeBuckets())
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-6)
			i++
		}
	})
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "h", TimeBuckets())
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(t0)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, stage := range []string{"quantile", "sla", "thresholds", "selection", "identify"} {
		r.Histogram("dcfp_monitor_stage_seconds", "h", TimeBuckets(),
			Label{"stage", stage}).Observe(1e-4)
	}
	r.Counter("dcfp_crises_detected_total", "h").Add(9)
	r.Gauge("dcfp_crisis_store_size", "h").SetInt(9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
