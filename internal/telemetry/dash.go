package telemetry

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// historyResponse is the /api/history JSON payload for one metric.
type historyResponse struct {
	Metric string          `json:"metric"`
	Since  int64           `json:"since"`
	Series []SeriesHistory `json:"series"`
}

// handleHistory serves /api/history. Without a metric parameter it lists
// the sampled metric names (optionally filtered by ?match=substr); with
// ?metric=name&since=N it returns that metric's raw and coarse tiers.
func handleHistory(w http.ResponseWriter, r *http.Request, h *History) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		names := h.MatchMetrics(q.Get("match"))
		if names == nil {
			names = []string{}
		}
		writeJSON(w, map[string]any{"metrics": names})
		return
	}
	if !validMetricName(metric) {
		writeJSONStatus(w, http.StatusBadRequest,
			map[string]string{"error": "malformed metric name " + strconv.Quote(metric)})
		return
	}
	var since int64
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			// A malformed or negative since used to fall through as 0 and
			// silently return the full range; callers deserve the 400.
			writeJSONStatus(w, http.StatusBadRequest,
				map[string]string{"error": "since must be a non-negative integer epoch"})
			return
		}
		since = v
	}
	series, ok := h.Query(metric, since)
	if !ok {
		writeJSONStatus(w, http.StatusNotFound,
			map[string]string{"error": "no history for metric " + metric})
		return
	}
	writeJSON(w, historyResponse{Metric: metric, Since: since, Series: series})
}

// dashDefaultMatch keeps the default dashboard focused on the pipeline's
// own gauges rather than every series in the registry.
const dashDefaultMatch = "dcfp_"

// handleDash serves /dash: a dependency-free HTML page with one
// server-rendered SVG sparkline per metric series (raw tier), filtered by
// ?match=substr (default "dcfp_"). It exists so an operator can eyeball
// fleet risk without scraping JSON; precise queries belong to /api/history.
func handleDash(w http.ResponseWriter, r *http.Request, h *History) {
	match := r.URL.Query().Get("match")
	if match == "" {
		match = dashDefaultMatch
	}
	names := h.MatchMetrics(match)
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>dcfp dash</title><style>` +
		`body{font-family:monospace;background:#111;color:#ddd;margin:2em}` +
		`h1{font-size:1.2em} .m{margin-bottom:1.2em}` +
		`.name{color:#8cf} .cur{color:#fc8} svg{background:#1a1a1a;display:block}` +
		`polyline{fill:none;stroke:#8cf;stroke-width:1}` +
		`h2{font-size:1em} table{border-collapse:collapse;margin-bottom:1.2em}` +
		`td,th{border:1px solid #333;padding:2px 8px;text-align:right} th{color:#8cf}` +
		`</style></head><body><h1>dcfp dash</h1>`)
	fmt.Fprintf(&b, `<p>%d samples · filter <code>?match=%s</code> · JSON at <code>/api/history</code></p>`,
		h.Samples(), html.EscapeString(match))
	b.WriteString(shardPanel(h))
	for _, name := range names {
		series, ok := h.Query(name, 0)
		if !ok {
			continue
		}
		for _, s := range series {
			fmt.Fprintf(&b, `<div class="m"><span class="name">%s</span>%s`,
				html.EscapeString(name), html.EscapeString(labelSuffix(s.Labels)))
			if n := len(s.Raw); n > 0 {
				fmt.Fprintf(&b, ` <span class="cur">%g</span> @%d`,
					s.Raw[n-1].Value, s.Raw[n-1].Epoch)
			}
			b.WriteString(sparkline(s.Raw, 360, 40))
			b.WriteString(`</div>`)
		}
	}
	if len(names) == 0 {
		b.WriteString(`<p>no series match</p>`)
	}
	b.WriteString(`</body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// shardLatest returns the newest raw value of each series of a metric,
// keyed by its shard label, optionally filtered to series carrying an
// extra label key=value pair. Series without a shard label are skipped.
func shardLatest(h *History, metric, filterKey, filterVal string) map[string]float64 {
	series, ok := h.Query(metric, 0)
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(series))
	for _, s := range series {
		shard, ok := s.Labels["shard"]
		if !ok || len(s.Raw) == 0 {
			continue
		}
		if filterKey != "" && s.Labels[filterKey] != filterVal {
			continue
		}
		out[shard] = s.Raw[len(s.Raw)-1].Value
	}
	return out
}

// shardPanel renders the per-shard fleet health table on /dash from the
// coordinator's own per-shard gauges (lag, liveness) plus the federated
// dcfp_fleet_shard_* re-exposition of each shard's local registry (ship
// latency and delivery fault counters). Empty — single-node runs, or a
// coordinator before its first frame — renders nothing.
func shardPanel(h *History) string {
	cols := []struct {
		title string
		vals  map[string]float64
	}{
		{"up", shardLatest(h, "dcfp_fleet_shard_up", "", "")},
		{"last epoch", shardLatest(h, "dcfp_fleet_shard_last_epoch", "", "")},
		{"lag (epochs)", shardLatest(h, "dcfp_fleet_shard_lag_epochs", "", "")},
		{"frames ok", shardLatest(h, "dcfp_fleet_shard_fleet_frames_shipped_total", "result", "ok")},
		{"frame errors", shardLatest(h, "dcfp_fleet_shard_fleet_frames_shipped_total", "result", "error")},
		{"abandoned", shardLatest(h, "dcfp_fleet_shard_fleet_ship_abandoned_total", "", "")},
		{"ship mean (ms)", shipMeanMillis(h)},
	}
	shards := make(map[string]bool)
	for _, c := range cols {
		for s := range c.vals {
			shards[s] = true
		}
	}
	if len(shards) == 0 {
		return ""
	}
	order := make([]string, 0, len(shards))
	for s := range shards {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool {
		a, erra := strconv.Atoi(order[i])
		b, errb := strconv.Atoi(order[j])
		if erra == nil && errb == nil {
			return a < b
		}
		return order[i] < order[j]
	})
	var b strings.Builder
	b.WriteString(`<h2>per-shard health</h2><table><tr><th>shard</th>`)
	for _, c := range cols {
		fmt.Fprintf(&b, `<th>%s</th>`, html.EscapeString(c.title))
	}
	b.WriteString(`</tr>`)
	for _, s := range order {
		fmt.Fprintf(&b, `<tr><td>%s</td>`, html.EscapeString(s))
		for _, c := range cols {
			if v, ok := c.vals[s]; ok {
				fmt.Fprintf(&b, `<td>%g</td>`, v)
			} else {
				b.WriteString(`<td>–</td>`)
			}
		}
		b.WriteString(`</tr>`)
	}
	b.WriteString(`</table>`)
	return b.String()
}

// shipMeanMillis derives each shard's mean frame-delivery latency from the
// federated ship-seconds histogram's _sum/_count series.
func shipMeanMillis(h *History) map[string]float64 {
	sums := shardLatest(h, "dcfp_fleet_shard_fleet_ship_seconds_sum", "", "")
	counts := shardLatest(h, "dcfp_fleet_shard_fleet_ship_seconds_count", "", "")
	out := make(map[string]float64, len(sums))
	for s, sum := range sums {
		if n := counts[s]; n > 0 {
			out[s] = 1000 * sum / n
		}
	}
	return out
}

// labelSuffix renders a {k="v",...} suffix for the dash, deterministic via
// the sorted map iteration below being over few keys (order is cosmetic).
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+`="`+v+`"`)
	}
	// map order varies; sort for stable pages
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// sparkline renders points as an SVG polyline scaled to w×h, with the value
// range padded so flat series draw mid-height rather than on an edge.
func sparkline(pts []HistoryPoint, w, h int) string {
	if len(pts) == 0 {
		return `<svg width="` + strconv.Itoa(w) + `" height="` + strconv.Itoa(h) + `"></svg>`
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d"><polyline points="`, w, h, w, h)
	for i, p := range pts {
		x := 0.0
		if len(pts) > 1 {
			x = float64(i) / float64(len(pts)-1) * float64(w)
		}
		y := (1 - (p.Value-lo)/(hi-lo)) * float64(h)
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	b.WriteString(`"/></svg>`)
	return b.String()
}
