package telemetry

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// historyResponse is the /api/history JSON payload for one metric.
type historyResponse struct {
	Metric string          `json:"metric"`
	Since  int64           `json:"since"`
	Series []SeriesHistory `json:"series"`
}

// handleHistory serves /api/history. Without a metric parameter it lists
// the sampled metric names (optionally filtered by ?match=substr); with
// ?metric=name&since=N it returns that metric's raw and coarse tiers.
func handleHistory(w http.ResponseWriter, r *http.Request, h *History) {
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		names := h.MatchMetrics(q.Get("match"))
		if names == nil {
			names = []string{}
		}
		writeJSON(w, map[string]any{"metrics": names})
		return
	}
	var since int64
	if s := q.Get("since"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			writeJSONStatus(w, http.StatusBadRequest,
				map[string]string{"error": "since must be an integer epoch"})
			return
		}
		since = v
	}
	series, ok := h.Query(metric, since)
	if !ok {
		writeJSONStatus(w, http.StatusNotFound,
			map[string]string{"error": "no history for metric " + metric})
		return
	}
	writeJSON(w, historyResponse{Metric: metric, Since: since, Series: series})
}

// dashDefaultMatch keeps the default dashboard focused on the pipeline's
// own gauges rather than every series in the registry.
const dashDefaultMatch = "dcfp_"

// handleDash serves /dash: a dependency-free HTML page with one
// server-rendered SVG sparkline per metric series (raw tier), filtered by
// ?match=substr (default "dcfp_"). It exists so an operator can eyeball
// fleet risk without scraping JSON; precise queries belong to /api/history.
func handleDash(w http.ResponseWriter, r *http.Request, h *History) {
	match := r.URL.Query().Get("match")
	if match == "" {
		match = dashDefaultMatch
	}
	names := h.MatchMetrics(match)
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8">` +
		`<title>dcfp dash</title><style>` +
		`body{font-family:monospace;background:#111;color:#ddd;margin:2em}` +
		`h1{font-size:1.2em} .m{margin-bottom:1.2em}` +
		`.name{color:#8cf} .cur{color:#fc8} svg{background:#1a1a1a;display:block}` +
		`polyline{fill:none;stroke:#8cf;stroke-width:1}` +
		`</style></head><body><h1>dcfp dash</h1>`)
	fmt.Fprintf(&b, `<p>%d samples · filter <code>?match=%s</code> · JSON at <code>/api/history</code></p>`,
		h.Samples(), html.EscapeString(match))
	for _, name := range names {
		series, ok := h.Query(name, 0)
		if !ok {
			continue
		}
		for _, s := range series {
			fmt.Fprintf(&b, `<div class="m"><span class="name">%s</span>%s`,
				html.EscapeString(name), html.EscapeString(labelSuffix(s.Labels)))
			if n := len(s.Raw); n > 0 {
				fmt.Fprintf(&b, ` <span class="cur">%g</span> @%d`,
					s.Raw[n-1].Value, s.Raw[n-1].Epoch)
			}
			b.WriteString(sparkline(s.Raw, 360, 40))
			b.WriteString(`</div>`)
		}
	}
	if len(names) == 0 {
		b.WriteString(`<p>no series match</p>`)
	}
	b.WriteString(`</body></html>`)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// labelSuffix renders a {k="v",...} suffix for the dash, deterministic via
// the sorted map iteration below being over few keys (order is cosmetic).
func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+`="`+v+`"`)
	}
	// map order varies; sort for stable pages
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// sparkline renders points as an SVG polyline scaled to w×h, with the value
// range padded so flat series draw mid-height rather than on an edge.
func sparkline(pts []HistoryPoint, w, h int) string {
	if len(pts) == 0 {
		return `<svg width="` + strconv.Itoa(w) + `" height="` + strconv.Itoa(h) + `"></svg>`
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.Value)
		hi = math.Max(hi, p.Value)
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d"><polyline points="`, w, h, w, h)
	for i, p := range pts {
		x := 0.0
		if len(pts) > 1 {
			x = float64(i) / float64(len(pts)-1) * float64(w)
		}
		y := (1 - (p.Value-lo)/(hi-lo)) * float64(h)
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	b.WriteString(`"/></svg>`)
	return b.String()
}
