package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// dashServer builds a handler over a seeded history: a plain gauge plus
// the coordinator's per-shard gauges and a federated ship histogram, so
// /dash renders both the sparklines and the per-shard health panel.
func dashServer(t *testing.T) (*httptest.Server, *History) {
	t.Helper()
	reg := NewRegistry()
	risk := reg.Gauge("dcfp_forecast_risk", "test.")
	up0 := reg.Gauge("dcfp_fleet_shard_up", "test.", Label{Key: "shard", Value: "0"})
	up1 := reg.Gauge("dcfp_fleet_shard_up", "test.", Label{Key: "shard", Value: "1"})
	lag1 := reg.Gauge("dcfp_fleet_shard_lag_epochs", "test.", Label{Key: "shard", Value: "1"})
	sum1 := reg.Gauge("dcfp_fleet_shard_fleet_ship_seconds_sum", "test.", Label{Key: "shard", Value: "1"})
	cnt1 := reg.Gauge("dcfp_fleet_shard_fleet_ship_seconds_count", "test.", Label{Key: "shard", Value: "1"})
	h := NewHistory(reg, DefaultHistoryConfig())
	up0.SetInt(1)
	up1.SetInt(1)
	for e := int64(0); e < 5; e++ {
		risk.Set(0.1 * float64(e))
		lag1.SetInt(e)
		sum1.Set(0.010 * float64(e+1))
		cnt1.SetInt(e + 1)
		h.Sample(e)
	}
	srv := httptest.NewServer(NewHandler(reg, Endpoints{History: h}))
	t.Cleanup(srv.Close)
	return srv, h
}

func TestDashRendersAndReferencesLiveRoutes(t *testing.T) {
	srv, _ := dashServer(t)
	resp, err := http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"<!DOCTYPE html>", "dcfp_forecast_risk", "<svg", "per-shard health"} {
		if !strings.Contains(page, want) {
			t.Fatalf("/dash missing %q:\n%.400s", want, page)
		}
	}
	// The shard panel carries both shards, with "–" for shard 0's missing
	// federated columns.
	if !strings.Contains(page, "<td>0</td>") || !strings.Contains(page, "<td>1</td>") {
		t.Fatalf("shard rows missing:\n%s", page)
	}
	if !strings.Contains(page, "–") {
		t.Fatalf("missing-value dash absent:\n%s", page)
	}
	// The ship mean derives from _sum/_count: 0.050s/5 = 10ms.
	if !strings.Contains(page, "<td>10</td>") {
		t.Fatalf("ship mean column missing:\n%s", page)
	}

	// Every absolute route the page mentions must actually be served.
	for _, route := range regexp.MustCompile(`/api/[a-z/]+`).FindAllString(page, -1) {
		r2, err := http.Get(srv.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode == http.StatusNotFound {
			t.Fatalf("/dash references %s but it 404s", route)
		}
	}
}

func TestDashWithoutShardsOmitsPanel(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("dcfp_demo", "test.")
	h := NewHistory(reg, DefaultHistoryConfig())
	g.Set(1)
	h.Sample(0)
	srv := httptest.NewServer(NewHandler(reg, Endpoints{History: h}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "per-shard health") {
		t.Fatalf("shard panel rendered with no shard series:\n%s", body)
	}
}

func TestHistoryBadRequests(t *testing.T) {
	srv, _ := dashServer(t)
	cases := []struct {
		name, url string
		status    int
	}{
		{"malformed since", "/api/history?metric=dcfp_forecast_risk&since=abc", http.StatusBadRequest},
		{"negative since", "/api/history?metric=dcfp_forecast_risk&since=-3", http.StatusBadRequest},
		{"malformed metric", "/api/history?metric=dcfp%20bogus%22name", http.StatusBadRequest},
		{"unknown metric", "/api/history?metric=dcfp_no_such_metric", http.StatusNotFound},
		{"valid", "/api/history?metric=dcfp_forecast_risk&since=2", http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(srv.URL + tc.url)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content-type %q, want JSON", ct)
			}
			if tc.status >= 400 {
				var payload struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(body, &payload); err != nil || payload.Error == "" {
					t.Fatalf("error payload not JSON with error field: %v %s", err, body)
				}
			}
		})
	}
}
