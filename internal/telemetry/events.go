package telemetry

import (
	"log/slog"
)

// EventLog emits the structured crisis-lifecycle event stream of the online
// pipeline: crisis detected → advice emitted (with fingerprint distances
// and the matched label or the unknown verdict) → crisis ended → crisis
// resolved, plus simulator progress events. It wraps a *slog.Logger so
// callers choose the handler (text for operators, JSON for shipping).
//
// A nil *EventLog is a valid disabled log: every method is a no-op, so
// library code can call it unconditionally.
type EventLog struct {
	l *slog.Logger
}

// NewEventLog wraps l; a nil logger yields a disabled (nil) event log.
func NewEventLog(l *slog.Logger) *EventLog {
	if l == nil {
		return nil
	}
	return &EventLog{l: l}
}

// Enabled reports whether events are actually recorded.
func (e *EventLog) Enabled() bool { return e != nil }

// Event emits a free-form event with slog key/value pairs.
func (e *EventLog) Event(name string, args ...any) {
	if e != nil {
		e.l.Info(name, args...)
	}
}

// CrisisDetected records the first SLA-violating epoch of a new crisis.
func (e *EventLog) CrisisDetected(epoch int64, id string) {
	if e != nil {
		e.l.Info("crisis.detected", "epoch", epoch, "crisis", id)
	}
}

// AdviceEmitted records one identification attempt: the verdict ("known"
// or "unknown"), the emitted label, and the nearest-candidate diagnostics.
func (e *EventLog) AdviceEmitted(epoch int64, id string, identEpoch int,
	verdict, emitted, nearest string, distance, threshold float64, candidates int) {
	if e != nil {
		e.l.Info("advice.emitted",
			"epoch", epoch, "crisis", id, "ident_epoch", identEpoch,
			"verdict", verdict, "emitted", emitted, "nearest", nearest,
			"distance", distance, "threshold", threshold, "candidates", candidates)
	}
}

// CrisisEnded records the close of a crisis episode; stored reports whether
// its raw quantile rows were captured into the crisis store (requires
// established thresholds).
func (e *EventLog) CrisisEnded(epoch int64, id string, durationEpochs int, stored bool) {
	if e != nil {
		e.l.Info("crisis.ended",
			"epoch", epoch, "crisis", id, "duration_epochs", durationEpochs, "stored", stored)
	}
}

// CrisisResolved records an operator diagnosis being filed.
func (e *EventLog) CrisisResolved(id, label string) {
	if e != nil {
		e.l.Info("crisis.resolved", "crisis", id, "label", label)
	}
}

// SimDay records one simulated day of trace generation: epochs produced so
// far, how many were in crisis, and how many crisis instances have begun.
func (e *EventLog) SimDay(day int, epoch int64, crisisEpochs, crisesInjected int) {
	if e != nil {
		e.l.Info("sim.day",
			"day", day, "epoch", epoch,
			"crisis_epochs", crisisEpochs, "crises_injected", crisesInjected)
	}
}

// CrisisInjected records the simulator scheduling a ground-truth instance.
func (e *EventLog) CrisisInjected(id string, typ string, start int64, durationEpochs int) {
	if e != nil {
		e.l.Info("sim.crisis_injected",
			"crisis", id, "type", typ, "start", start, "duration_epochs", durationEpochs)
	}
}
