package telemetry

import (
	"sort"
	"strings"
	"sync"
)

// History is the time-series store behind /api/history and /dash: every
// epoch it samples all counter and gauge series of a Registry (histograms
// via their _count/_sum projections) into per-series fixed-capacity rings at
// two downsampling tiers — a raw tier holding the most recent samples
// verbatim and a coarse tier holding bucket means over CoarseEvery samples,
// so a query can cover CoarseCapacity*CoarseEvery epochs of the past at
// bounded memory. Capacity is fixed at construction; steady-state sampling
// allocates only when a new series first appears.
//
// History is safe for concurrent use: the daemon samples from the epoch
// loop while HTTP handlers query snapshots. A nil *History is a valid
// disabled store — Sample and Query are no-ops.
type History struct {
	mu     sync.Mutex
	reg    *Registry
	cfg    HistoryConfig
	series map[string]*seriesHistory // keyed by name + canonical label key
	names  []string                  // sorted unique family names, maintained incrementally
	n      int64                     // samples taken
}

// HistoryConfig sizes the two ring tiers.
type HistoryConfig struct {
	// RawCapacity is how many most-recent samples each series retains
	// verbatim (default 512).
	RawCapacity int
	// CoarseCapacity is how many downsampled points each series retains
	// (default 512).
	CoarseCapacity int
	// CoarseEvery is how many raw samples are averaged into one coarse
	// point (default 8): the coarse tier then spans
	// CoarseCapacity*CoarseEvery epochs.
	CoarseEvery int
}

// DefaultHistoryConfig covers ~5 days raw and ~42 days coarse at one sample
// per 15-minute epoch.
func DefaultHistoryConfig() HistoryConfig {
	return HistoryConfig{RawCapacity: 512, CoarseCapacity: 512, CoarseEvery: 8}
}

func (c *HistoryConfig) setDefaults() {
	d := DefaultHistoryConfig()
	if c.RawCapacity <= 0 {
		c.RawCapacity = d.RawCapacity
	}
	if c.CoarseCapacity <= 0 {
		c.CoarseCapacity = d.CoarseCapacity
	}
	if c.CoarseEvery <= 0 {
		c.CoarseEvery = d.CoarseEvery
	}
}

// HistoryPoint is one (epoch, value) sample. Coarse-tier points are bucket
// means: Epoch is the first epoch folded into the bucket and End the last;
// raw points leave End zero.
type HistoryPoint struct {
	Epoch int64   `json:"e"`
	End   int64   `json:"end,omitempty"`
	Value float64 `json:"v"`
}

// pointRing is a fixed-capacity ring of HistoryPoints.
type pointRing struct {
	buf  []HistoryPoint
	head int // next write slot
	n    int // filled entries
}

func newPointRing(capacity int) pointRing {
	return pointRing{buf: make([]HistoryPoint, capacity)}
}

func (r *pointRing) push(p HistoryPoint) {
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// collect appends the ring's points oldest-first, dropping those entirely
// before since: a point is kept while any epoch it covers (its own, or up
// to End for a coarse bucket) is >= since, so a bucket straddling the
// bound is returned rather than silently dropped.
func (r *pointRing) collect(dst []HistoryPoint, since int64) []HistoryPoint {
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	for i := 0; i < r.n; i++ {
		p := r.buf[(start+i)%len(r.buf)]
		if p.Epoch >= since || p.End >= since {
			dst = append(dst, p)
		}
	}
	return dst
}

// seriesHistory holds both tiers of one series plus the coarse accumulator.
type seriesHistory struct {
	name    string
	labels  []Label
	raw     pointRing
	coarse  pointRing
	accSum  float64
	accN    int
	accAt   int64 // epoch of the accumulator's first sample
	accLast int64 // epoch of the accumulator's most recent sample
}

// NewHistory builds a history sampling reg. Zero config fields take
// defaults. A nil registry yields a nil (disabled) history.
func NewHistory(reg *Registry, cfg HistoryConfig) *History {
	if reg == nil {
		return nil
	}
	cfg.setDefaults()
	return &History{reg: reg, cfg: cfg, series: make(map[string]*seriesHistory)}
}

// Sample records one point per registry series, stamped with the given
// epoch. Call it once per epoch from the owning loop; epochs should be
// monotonically non-decreasing (queries trust ring order).
func (h *History) Sample(epoch int64) {
	if h == nil {
		return
	}
	vals := h.reg.Gather()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.n++
	for _, v := range vals {
		key := v.Name + "\x00" + labelKey(v.Labels)
		s, ok := h.series[key]
		if !ok {
			s = &seriesHistory{
				name:   v.Name,
				labels: append([]Label(nil), v.Labels...),
				raw:    newPointRing(h.cfg.RawCapacity),
				coarse: newPointRing(h.cfg.CoarseCapacity),
			}
			h.series[key] = s
			if i := sort.SearchStrings(h.names, v.Name); i == len(h.names) || h.names[i] != v.Name {
				h.names = append(h.names, "")
				copy(h.names[i+1:], h.names[i:])
				h.names[i] = v.Name
			}
		}
		s.raw.push(HistoryPoint{Epoch: epoch, Value: v.Value})
		if s.accN == 0 {
			s.accAt = epoch
		}
		s.accLast = epoch
		s.accSum += v.Value
		s.accN++
		if s.accN >= h.cfg.CoarseEvery {
			s.coarse.push(HistoryPoint{Epoch: s.accAt, End: s.accLast, Value: s.accSum / float64(s.accN)})
			s.accSum, s.accN = 0, 0
		}
	}
}

// Samples reports how many Sample calls have been taken.
func (h *History) Samples() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Metrics lists every sampled series name, sorted. Nil-safe.
func (h *History) Metrics() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.names...)
}

// SeriesHistory is the query result for one label variant of a metric:
// the raw tier (recent, every epoch) and the coarse tier (older, bucket
// means), both oldest-first and filtered by the query's since bound.
type SeriesHistory struct {
	Labels map[string]string `json:"labels"`
	Raw    []HistoryPoint    `json:"raw"`
	Coarse []HistoryPoint    `json:"coarse"`
}

// Query returns the history of every label variant of metric with points at
// epochs >= since, label-order deterministic. A coarse bucket is a range of
// epochs [Epoch, End]; it is included iff End >= since, so the bucket
// straddling the since bound is returned (its mean covers epochs inside the
// query range) rather than dropped for starting before it. ok is false when
// the metric has never been sampled. Nil-safe (never ok).
func (h *History) Query(metric string, since int64) ([]SeriesHistory, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make([]string, 0, 4)
	for key, s := range h.series {
		if s.name == metric {
			keys = append(keys, key)
		}
	}
	if len(keys) == 0 {
		return nil, false
	}
	sort.Strings(keys)
	out := make([]SeriesHistory, 0, len(keys))
	for _, key := range keys {
		s := h.series[key]
		labels := make(map[string]string, len(s.labels))
		for _, l := range s.labels {
			labels[l.Key] = l.Value
		}
		out = append(out, SeriesHistory{
			Labels: labels,
			Raw:    s.raw.collect(make([]HistoryPoint, 0, s.raw.n), since),
			Coarse: s.coarse.collect(make([]HistoryPoint, 0, s.coarse.n), since),
		})
	}
	return out, true
}

// MatchMetrics returns the sampled series names containing substr (all
// names when substr is empty), for /api/history discovery.
func (h *History) MatchMetrics(substr string) []string {
	names := h.Metrics()
	if substr == "" {
		return names
	}
	out := names[:0]
	for _, n := range names {
		if strings.Contains(n, substr) {
			out = append(out, n)
		}
	}
	return out
}
