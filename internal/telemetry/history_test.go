package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistorySampleAndQuery(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "g")
	c := reg.Counter("test_counter", "c")
	hist := NewHistory(reg, HistoryConfig{RawCapacity: 4, CoarseCapacity: 4, CoarseEvery: 2})

	for e := int64(0); e < 10; e++ {
		g.Set(float64(e))
		c.Inc()
		hist.Sample(e)
	}

	if got := hist.Samples(); got != 10 {
		t.Fatalf("Samples() = %d, want 10", got)
	}
	names := hist.Metrics()
	if len(names) != 2 || names[0] != "test_counter" || names[1] != "test_gauge" {
		t.Fatalf("Metrics() = %v, want [test_counter test_gauge]", names)
	}

	series, ok := hist.Query("test_gauge", 0)
	if !ok || len(series) != 1 {
		t.Fatalf("Query(test_gauge) ok=%v len=%d, want one series", ok, len(series))
	}
	s := series[0]
	// Raw ring capacity 4 keeps epochs 6..9.
	if len(s.Raw) != 4 || s.Raw[0].Epoch != 6 || s.Raw[3].Epoch != 9 {
		t.Fatalf("raw tier = %+v, want epochs 6..9", s.Raw)
	}
	if s.Raw[3].Value != 9 {
		t.Fatalf("raw last value = %g, want 9", s.Raw[3].Value)
	}
	// Coarse: buckets of 2 → 5 buckets produced, capacity 4 keeps the
	// buckets starting at epochs 2,4,6,8 with bucket means.
	if len(s.Coarse) != 4 || s.Coarse[0].Epoch != 2 || s.Coarse[3].Epoch != 8 {
		t.Fatalf("coarse tier = %+v, want bucket epochs 2,4,6,8", s.Coarse)
	}
	if s.Coarse[3].Value != 8.5 {
		t.Fatalf("coarse last mean = %g, want 8.5", s.Coarse[3].Value)
	}

	// since filters both tiers.
	series, _ = hist.Query("test_gauge", 8)
	if len(series[0].Raw) != 2 || len(series[0].Coarse) != 1 {
		t.Fatalf("since=8: raw=%d coarse=%d, want 2 and 1",
			len(series[0].Raw), len(series[0].Coarse))
	}

	if _, ok := hist.Query("nope", 0); ok {
		t.Fatal("Query(nope) reported ok for an unsampled metric")
	}
}

// TestHistoryCoarseStraddlingBucket pins the coarse-tier boundary rule: a
// bucket whose [Epoch, End] range straddles the since bound is included —
// its mean covers epochs inside the query range — while a bucket that ends
// before since is not.
func TestHistoryCoarseStraddlingBucket(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "g")
	hist := NewHistory(reg, HistoryConfig{RawCapacity: 16, CoarseCapacity: 16, CoarseEvery: 4})

	for e := int64(0); e < 8; e++ {
		g.Set(float64(e))
		hist.Sample(e)
	}
	// Buckets: [0,3] mean 1.5 and [4,7] mean 5.5.
	series, ok := hist.Query("test_gauge", 2)
	if !ok {
		t.Fatal("metric not found")
	}
	coarse := series[0].Coarse
	if len(coarse) != 2 || coarse[0].Epoch != 0 || coarse[0].End != 3 || coarse[0].Value != 1.5 {
		t.Fatalf("since=2 coarse = %+v, want straddling bucket [0,3] kept", coarse)
	}
	// since past the first bucket's end excludes it.
	series, _ = hist.Query("test_gauge", 4)
	coarse = series[0].Coarse
	if len(coarse) != 1 || coarse[0].Epoch != 4 || coarse[0].End != 7 {
		t.Fatalf("since=4 coarse = %+v, want only bucket [4,7]", coarse)
	}
	// Raw points never grow an End; the boundary there is exact.
	if raw := series[0].Raw; len(raw) != 4 || raw[0].Epoch != 4 || raw[0].End != 0 {
		t.Fatalf("since=4 raw = %+v, want epochs 4..7 with End 0", raw)
	}
}

func TestHistoryLabelVariantsAndHistograms(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("lv", "g", Label{Key: "x", Value: "a"}).Set(1)
	reg.Gauge("lv", "g", Label{Key: "x", Value: "b"}).Set(2)
	h := reg.Histogram("hist", "h", []float64{1, 10})
	h.Observe(3)
	h.Observe(7)
	hist := NewHistory(reg, HistoryConfig{})
	hist.Sample(1)

	series, ok := hist.Query("lv", 0)
	if !ok || len(series) != 2 {
		t.Fatalf("Query(lv) ok=%v len=%d, want two label variants", ok, len(series))
	}
	if series[0].Labels["x"] != "a" || series[1].Labels["x"] != "b" {
		t.Fatalf("label variants out of order: %+v", series)
	}

	cnt, ok := hist.Query("hist_count", 0)
	if !ok || cnt[0].Raw[0].Value != 2 {
		t.Fatalf("hist_count = %+v ok=%v, want one point of 2", cnt, ok)
	}
	sum, ok := hist.Query("hist_sum", 0)
	if !ok || sum[0].Raw[0].Value != 10 {
		t.Fatalf("hist_sum = %+v ok=%v, want one point of 10", sum, ok)
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Sample(1)
	if h.Metrics() != nil || h.Samples() != 0 {
		t.Fatal("nil history should report no metrics and no samples")
	}
	if _, ok := h.Query("x", 0); ok {
		t.Fatal("nil history Query reported ok")
	}
	if NewHistory(nil, HistoryConfig{}) != nil {
		t.Fatal("NewHistory(nil) should be nil")
	}
}

func TestHistoryHTTPEndpoints(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("dcfp_demo", "demo gauge")
	hist := NewHistory(reg, HistoryConfig{})
	for e := int64(0); e < 5; e++ {
		g.Set(float64(e * e))
		hist.Sample(e)
	}
	handler := NewHandler(reg, Endpoints{History: hist})

	// Listing.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/history", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "dcfp_demo") {
		t.Fatalf("listing: code=%d body=%s", rec.Code, rec.Body.String())
	}

	// Query.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/history?metric=dcfp_demo&since=2", nil))
	if rec.Code != 200 {
		t.Fatalf("query: code=%d body=%s", rec.Code, rec.Body.String())
	}
	var resp historyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("query: bad JSON: %v", err)
	}
	if resp.Metric != "dcfp_demo" || len(resp.Series) != 1 || len(resp.Series[0].Raw) != 3 {
		t.Fatalf("query: unexpected payload %+v", resp)
	}
	if resp.Series[0].Raw[2].Value != 16 {
		t.Fatalf("query: last raw value = %g, want 16", resp.Series[0].Raw[2].Value)
	}

	// Unknown metric 404s; bad since 400s.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/history?metric=zzz", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown metric: code=%d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/api/history?metric=dcfp_demo&since=xyz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad since: code=%d, want 400", rec.Code)
	}

	// Dash renders a sparkline for the gauge.
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/dash", nil))
	body := rec.Body.String()
	if rec.Code != 200 || !strings.Contains(body, "dcfp_demo") || !strings.Contains(body, "<polyline") {
		t.Fatalf("dash: code=%d body=%.200s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("dash content type = %q", ct)
	}
}

func TestRegistryGatherAndValue(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c").Add(3)
	reg.Gauge("g", "g", Label{Key: "k", Value: "v"}).Set(1.5)
	h := reg.Histogram("h", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	vals := reg.Gather()
	byName := map[string]float64{}
	for _, v := range vals {
		byName[v.Name] = v.Value
	}
	if byName["c_total"] != 3 || byName["g"] != 1.5 || byName["h_count"] != 2 || byName["h_sum"] != 2.5 {
		t.Fatalf("Gather() = %+v", byName)
	}

	if v, ok := reg.Value("g", Label{Key: "k", Value: "v"}); !ok || v != 1.5 {
		t.Fatalf("Value(g) = %g,%v", v, ok)
	}
	if v, ok := reg.Value("h_count"); !ok || v != 2 {
		t.Fatalf("Value(h_count) = %g,%v", v, ok)
	}
	if v, ok := reg.Value("h_sum"); !ok || v != 2.5 {
		t.Fatalf("Value(h_sum) = %g,%v", v, ok)
	}
	if _, ok := reg.Value("missing"); ok {
		t.Fatal("Value(missing) reported ok")
	}
	// Probing must not create series.
	if _, ok := reg.Value("g", Label{Key: "k", Value: "other"}); ok {
		t.Fatal("Value with unknown labels reported ok")
	}
	var nilReg *Registry
	if nilReg.Gather() != nil {
		t.Fatal("nil registry Gather should be nil")
	}
	if _, ok := nilReg.Value("g"); ok {
		t.Fatal("nil registry Value reported ok")
	}
}
