package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler bundles the observability endpoints into one http.Handler:
//
//	/metrics        Prometheus text exposition of reg
//	/healthz        JSON from health() (a static {"status":"ok"} when nil)
//	/crises         JSON from crises() (404 when nil)
//	/debug/pprof/*  net/http/pprof profiles
//
// health and crises are called per request, so they should return cheap
// point-in-time snapshots.
func Handler(reg *Registry, health func() any, crises func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var payload any = map[string]string{"status": "ok"}
		if health != nil {
			payload = health()
		}
		writeJSON(w, payload)
	})
	if crises != nil {
		mux.HandleFunc("/crises", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, crises())
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, payload any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve listens on addr and serves h in a background goroutine, returning
// the server (Close/Shutdown it when done) and the bound address — useful
// with ":0" in tests. Listen errors (port in use, bad address) surface
// immediately rather than asynchronously.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
