package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Endpoints wires the JSON observability endpoints of NewHandler. Every
// func is called per request and should return a cheap point-in-time
// snapshot; a nil func 404s its route. All JSON routes share the same
// response guarantee: Content-Type is application/json and slice payloads
// render [] rather than null (providers return non-nil slices; see the
// cmd/dcfpd wiring).
type Endpoints struct {
	// Health backs /healthz; a static {"status":"ok"} when nil.
	Health func() any
	// Crises backs /crises.
	Crises func() any
	// Traces backs /traces (the tracer ring, newest first).
	Traces func() any
	// Accuracy backs /accuracy (the identification scoreboard).
	Accuracy func() any
	// Explain backs /explain/{crisisID}; ok=false yields a JSON 404.
	Explain func(crisisID string) (any, bool)
	// History backs /api/history and /dash; nil 404s both.
	History *History
	// Alerts backs /alerts (the alert engine's rule snapshots).
	Alerts func() any
	// Incidents backs /incidents (the incident-report index); Incident
	// backs /incidents/{id} with one full report, ok=false yielding a
	// JSON 404. Both nil 404 their routes.
	Incidents func() any
	Incident  func(id string) (any, bool)
}

// NewHandler bundles the observability endpoints into one http.Handler:
//
//	/metrics             Prometheus text exposition of reg
//	/healthz             JSON from Health (a static {"status":"ok"} when nil)
//	/crises              JSON from Crises (404 when nil)
//	/traces              JSON from Traces (404 when nil)
//	/accuracy            JSON from Accuracy (404 when nil)
//	/explain/{crisisID}  JSON from Explain (404 when nil or unknown ID)
//	/alerts              JSON from Alerts (404 when nil)
//	/incidents           JSON incident index from Incidents (404 when nil)
//	/incidents/{id}      JSON incident report from Incident (404 when nil or unknown)
//	/api/history         JSON time series from History (404 when nil)
//	/dash                sparkline HTML dashboard over History (404 when nil)
//	/debug/pprof/*       net/http/pprof profiles
func NewHandler(reg *Registry, ep Endpoints) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		var payload any = map[string]string{"status": "ok"}
		if ep.Health != nil {
			payload = ep.Health()
		}
		writeJSON(w, payload)
	})
	for route, snap := range map[string]func() any{
		"/crises":   ep.Crises,
		"/traces":   ep.Traces,
		"/accuracy": ep.Accuracy,
		"/alerts":   ep.Alerts,
	} {
		if snap == nil {
			continue
		}
		snap := snap
		mux.HandleFunc(route, func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, snap())
		})
	}
	if ep.Explain != nil {
		mux.HandleFunc("/explain/", func(w http.ResponseWriter, r *http.Request) {
			id := strings.TrimPrefix(r.URL.Path, "/explain/")
			if id == "" || strings.Contains(id, "/") {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "usage: /explain/{crisisID}"})
				return
			}
			payload, ok := ep.Explain(id)
			if !ok {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "unknown crisis " + id})
				return
			}
			writeJSON(w, payload)
		})
	}
	if ep.Incidents != nil || ep.Incident != nil {
		mux.HandleFunc("/incidents", func(w http.ResponseWriter, _ *http.Request) {
			if ep.Incidents == nil {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no incident index"})
				return
			}
			writeJSON(w, ep.Incidents())
		})
		mux.HandleFunc("/incidents/", func(w http.ResponseWriter, r *http.Request) {
			id := strings.TrimPrefix(r.URL.Path, "/incidents/")
			if id == "" || strings.Contains(id, "/") {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "usage: /incidents/{crisisID}"})
				return
			}
			if ep.Incident == nil {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no incident reports"})
				return
			}
			payload, ok := ep.Incident(id)
			if !ok {
				writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "unknown incident " + id})
				return
			}
			writeJSON(w, payload)
		})
	}
	if ep.History != nil {
		mux.HandleFunc("/api/history", func(w http.ResponseWriter, r *http.Request) {
			handleHistory(w, r, ep.History)
		})
		mux.HandleFunc("/dash", func(w http.ResponseWriter, r *http.Request) {
			handleDash(w, r, ep.History)
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler is the original three-argument form, kept for callers predating
// Endpoints.
func Handler(reg *Registry, health func() any, crises func() any) http.Handler {
	return NewHandler(reg, Endpoints{Health: health, Crises: crises})
}

func writeJSON(w http.ResponseWriter, payload any) {
	writeJSONStatus(w, http.StatusOK, payload)
}

func writeJSONStatus(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve listens on addr and serves h in a background goroutine, returning
// the server (Close/Shutdown it when done) and the bound address — useful
// with ":0" in tests. Listen errors (port in use, bad address) surface
// immediately rather than asynchronously.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
