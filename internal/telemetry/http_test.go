package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcfp_crises_detected_total", "Crises detected.").Add(2)
	reg.Histogram("dcfp_observe_epoch_seconds", "ObserveEpoch latency.", TimeBuckets()).Observe(0.001)

	health := func() any { return map[string]any{"status": "ok", "epochs": 42} }
	crises := func() any { return []map[string]string{{"id": "crisis-001", "label": "db-overload"}} }
	srv := httptest.NewServer(Handler(reg, health, crises))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/metrics")
		if !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content-type = %q", ct)
		}
		for _, want := range []string{
			"dcfp_crises_detected_total 2",
			`dcfp_observe_epoch_seconds_bucket{le="+Inf"} 1`,
			"dcfp_observe_epoch_seconds_count 1",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("metrics missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("healthz", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/healthz")
		if ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var payload map[string]any
		if err := json.Unmarshal([]byte(body), &payload); err != nil {
			t.Fatalf("healthz not JSON: %v\n%s", err, body)
		}
		if payload["status"] != "ok" || payload["epochs"] != float64(42) {
			t.Fatalf("healthz payload = %v", payload)
		}
	})

	t.Run("crises", func(t *testing.T) {
		body, _ := get(t, srv.URL+"/crises")
		var payload []map[string]string
		if err := json.Unmarshal([]byte(body), &payload); err != nil {
			t.Fatalf("crises not JSON: %v\n%s", err, body)
		}
		if len(payload) != 1 || payload[0]["id"] != "crisis-001" {
			t.Fatalf("crises payload = %v", payload)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, _ := get(t, srv.URL+"/debug/pprof/")
		if !strings.Contains(body, "profile") {
			t.Fatalf("pprof index unexpected:\n%.200s", body)
		}
	})
}

func TestHandlerDefaults(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	body, _ := get(t, srv.URL+"/healthz")
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("default healthz = %s", body)
	}
	resp, err := http.Get(srv.URL + "/crises")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/crises without provider: status %d, want 404", resp.StatusCode)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", Handler(NewRegistry(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, "http://"+addr+"/healthz")
	if !strings.Contains(body, "ok") {
		t.Fatalf("healthz over Serve = %s", body)
	}
	if _, _, err := Serve("256.0.0.1:bad", nil); err == nil {
		t.Fatal("want listen error for bad address")
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, b)
	}
	return string(b), resp.Header.Get("Content-Type")
}
