package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dcfp_crises_detected_total", "Crises detected.").Add(2)
	reg.Histogram("dcfp_observe_epoch_seconds", "ObserveEpoch latency.", TimeBuckets()).Observe(0.001)

	health := func() any { return map[string]any{"status": "ok", "epochs": 42} }
	crises := func() any { return []map[string]string{{"id": "crisis-001", "label": "db-overload"}} }
	srv := httptest.NewServer(Handler(reg, health, crises))
	defer srv.Close()

	t.Run("metrics", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/metrics")
		if !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content-type = %q", ct)
		}
		for _, want := range []string{
			"dcfp_crises_detected_total 2",
			`dcfp_observe_epoch_seconds_bucket{le="+Inf"} 1`,
			"dcfp_observe_epoch_seconds_count 1",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("metrics missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("healthz", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/healthz")
		if ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var payload map[string]any
		if err := json.Unmarshal([]byte(body), &payload); err != nil {
			t.Fatalf("healthz not JSON: %v\n%s", err, body)
		}
		if payload["status"] != "ok" || payload["epochs"] != float64(42) {
			t.Fatalf("healthz payload = %v", payload)
		}
	})

	t.Run("crises", func(t *testing.T) {
		body, _ := get(t, srv.URL+"/crises")
		var payload []map[string]string
		if err := json.Unmarshal([]byte(body), &payload); err != nil {
			t.Fatalf("crises not JSON: %v\n%s", err, body)
		}
		if len(payload) != 1 || payload[0]["id"] != "crisis-001" {
			t.Fatalf("crises payload = %v", payload)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		body, _ := get(t, srv.URL+"/debug/pprof/")
		if !strings.Contains(body, "profile") {
			t.Fatalf("pprof index unexpected:\n%.200s", body)
		}
	})
}

func TestHandlerDefaults(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil, nil))
	defer srv.Close()
	body, _ := get(t, srv.URL+"/healthz")
	if !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("default healthz = %s", body)
	}
	resp, err := http.Get(srv.URL + "/crises")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/crises without provider: status %d, want 404", resp.StatusCode)
	}
}

// TestNewHandlerObservability covers the decision-tracing endpoints:
// /traces and /accuracy share the /crises JSON guarantee (application/json,
// [] never null), and /explain/{id} resolves known IDs and 404s unknown
// ones with a JSON body.
func TestNewHandlerObservability(t *testing.T) {
	tracer := NewTracer(4)
	tracer.StartTrace("observe_epoch").End()
	srv := httptest.NewServer(NewHandler(NewRegistry(), Endpoints{
		Traces:   func() any { return tracer.Snapshots() },
		Accuracy: func() any { return map[string]any{"known_accuracy": 0.8} },
		Explain: func(id string) (any, bool) {
			if id != "crisis-001" {
				return nil, false
			}
			return map[string]string{"crisis_id": id}, true
		},
	}))
	defer srv.Close()

	t.Run("traces", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/traces")
		if ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var snaps []TraceSnapshot
		if err := json.Unmarshal([]byte(body), &snaps); err != nil {
			t.Fatalf("traces not JSON: %v\n%s", err, body)
		}
		if len(snaps) != 1 || snaps[0].Name != "observe_epoch" {
			t.Fatalf("traces payload = %+v", snaps)
		}
	})

	t.Run("accuracy", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/accuracy")
		if ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		var payload map[string]any
		if err := json.Unmarshal([]byte(body), &payload); err != nil {
			t.Fatalf("accuracy not JSON: %v\n%s", err, body)
		}
		if payload["known_accuracy"] != 0.8 {
			t.Fatalf("accuracy payload = %v", payload)
		}
	})

	t.Run("explain", func(t *testing.T) {
		body, ct := get(t, srv.URL+"/explain/crisis-001")
		if ct != "application/json" {
			t.Fatalf("content-type = %q", ct)
		}
		if !strings.Contains(body, "crisis-001") {
			t.Fatalf("explain payload = %s", body)
		}
	})

	t.Run("explain-unknown", func(t *testing.T) {
		for _, path := range []string{"/explain/nope", "/explain/", "/explain/a/b"} {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET %s: status %d, want 404", path, resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("GET %s: content-type %q, want JSON error body", path, ct)
			}
			var payload map[string]string
			if err := json.Unmarshal(b, &payload); err != nil || payload["error"] == "" {
				t.Fatalf("GET %s: error body not JSON: %v\n%s", path, err, b)
			}
		}
	})

	t.Run("empty-traces-render-array", func(t *testing.T) {
		// A disabled tracer still yields [], never null — the guarantee the
		// dashboard parsers rely on.
		var disabled *Tracer
		srv2 := httptest.NewServer(NewHandler(NewRegistry(), Endpoints{
			Traces: func() any { return disabled.Snapshots() },
		}))
		defer srv2.Close()
		body, _ := get(t, srv2.URL+"/traces")
		if strings.TrimSpace(body) != "[]" {
			t.Fatalf("empty traces rendered %q, want []", body)
		}
	})
}

// TestNewHandlerDefaults404: unwired observability routes 404 rather than
// serving empty bodies.
func TestNewHandlerDefaults404(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewRegistry(), Endpoints{}))
	defer srv.Close()
	for _, path := range []string{"/traces", "/accuracy", "/explain/x"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without provider: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", Handler(NewRegistry(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body, _ := get(t, "http://"+addr+"/healthz")
	if !strings.Contains(body, "ok") {
		t.Fatalf("healthz over Serve = %s", body)
	}
	if _, _, err := Serve("256.0.0.1:bad", nil); err == nil {
		t.Fatal("want listen error for bad address")
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, b)
	}
	return string(b), resp.Header.Get("Content-Type")
}
