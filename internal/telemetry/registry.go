// Package telemetry is the stdlib-only observability substrate of the dcfp
// pipeline: a concurrency-safe Registry of counters, gauges and fixed-bucket
// latency histograms rendered in the Prometheus text exposition format, a
// structured crisis-lifecycle event log backed by log/slog, and an HTTP
// handler bundling /metrics, /healthz, /crises and net/http/pprof.
//
// The package is designed so uninstrumented library callers pay ~zero cost:
// every constructor and method is nil-safe. A nil *Registry hands out nil
// metric handles, and Inc/Set/Observe on a nil handle is a no-op branch —
// the hot path (Monitor.ObserveEpoch) only calls time.Now when a registry
// is actually attached.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant key/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// kind discriminates the metric families a Registry holds.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; construct with NewRegistry. A nil *Registry is a
// valid "telemetry disabled" registry: it hands out nil metric handles.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family groups all label variants (series) of one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram bucket upper bounds

	mu     sync.Mutex
	series map[string]*series
}

// series is one (name, labels) time series.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter named name with the given constant labels,
// registering it on first use. Returns nil (a no-op handle) on a nil
// registry. Panics on an invalid name/labels or if name is already
// registered as a different metric kind — these are programming errors
// surfaced at startup, mirroring the Prometheus client convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge named name with the given constant labels,
// registering it on first use. Nil-safe like Counter.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram named name with the given bucket upper
// bounds (strictly increasing; an implicit +Inf bucket is always appended)
// and constant labels, registering it on first use. Nil-safe like Counter.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly increasing at %d", name, i))
		}
	}
	s := r.lookup(name, help, kindHistogram, buckets, labels)
	return s.h
}

// lookup finds or creates the (name, labels) series; get-or-create so that
// repeated registration returns the same underlying metric.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) *series {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabelKey(l.Key)
	}
	r.mu.Lock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: append([]float64(nil), buckets...),
			series: make(map[string]*series)}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %q already registered as %s, requested %s", name, f.kind, k))
	}

	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: sortedLabels(labels)}
	switch k {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add adds d (atomic compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histShards spreads histogram observations over independently locked
// shards so concurrent hot paths do not serialize on one mutex; the shard
// is picked round-robin with a single atomic increment.
const histShards = 8

// Histogram accumulates observations into fixed buckets (upper bounds set
// at registration, +Inf implicit). Safe for concurrent use; no-op on nil.
type Histogram struct {
	bounds []float64
	next   atomic.Uint32
	shards [histShards]histShard
}

type histShard struct {
	mu     sync.Mutex
	counts []uint64
	sum    float64
	n      uint64
	// pad the shard to its own cache line so neighbouring shard mutexes
	// do not false-share under concurrent Observe storms.
	_ [32]byte
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	for i := range h.shards {
		h.shards[i].counts = make([]uint64, len(bounds))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= le
	s := &h.shards[h.next.Add(1)%histShards]
	s.mu.Lock()
	if i < len(s.counts) {
		s.counts[i]++
	}
	s.sum += v
	s.n++
	s.mu.Unlock()
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// snapshot merges the shards into per-bucket counts, sum and total count.
func (h *Histogram) snapshot() (counts []uint64, sum float64, n uint64) {
	counts = make([]uint64, len(h.bounds))
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for j, c := range s.counts {
			counts[j] += c
		}
		sum += s.sum
		n += s.n
		s.mu.Unlock()
	}
	return counts, sum, n
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, _, n := h.snapshot()
	return n
}

// Sum reports the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	_, s, _ := h.snapshot()
	return s
}

// TimeBuckets is the default latency bucket ladder, spanning 1µs–2.5s —
// wide enough for both the per-epoch monitor fast path (µs–ms) and full
// threshold recomputations (ms–s).
func TimeBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
	}
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// SeriesValue is one sampled (name, labels, value) point of a registry:
// the unit of Gather's output and of History's per-epoch sampling.
type SeriesValue struct {
	Name   string
	Labels []Label
	Value  float64
}

// Gather samples every counter and gauge series into a flat, deterministic
// (name-then-labels sorted) slice. Histograms contribute two synthetic
// series, <name>_count and <name>_sum — the parts with a meaningful scalar
// trajectory. A nil registry gathers nothing. Gather allocates its result
// and is meant for once-per-epoch sampling (History), not the hot path.
func (r *Registry) Gather() []SeriesValue {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var out []SeriesValue
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case kindCounter:
				out = append(out, SeriesValue{Name: f.name, Labels: s.labels, Value: float64(s.c.Value())})
			case kindGauge:
				out = append(out, SeriesValue{Name: f.name, Labels: s.labels, Value: s.g.Value()})
			case kindHistogram:
				_, sum, n := s.h.snapshot()
				out = append(out,
					SeriesValue{Name: f.name + "_count", Labels: s.labels, Value: float64(n)},
					SeriesValue{Name: f.name + "_sum", Labels: s.labels, Value: sum})
			}
		}
		f.mu.Unlock()
	}
	return out
}

// Value reads the current value of one counter or gauge series without
// registering anything: ok is false when the family or the exact label set
// does not exist. Histogram families answer through their synthetic
// <name>_count and <name>_sum series, matching Gather. This is the alert
// engine's read path — rules probe series that instrumentation may not have
// created yet, and probing must not create them.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	wantCount, wantSum := false, false
	r.mu.RLock()
	f, ok := r.families[name]
	if !ok {
		if base, found := strings.CutSuffix(name, "_count"); found {
			f, ok = r.families[base]
			wantCount = ok && f.kind == kindHistogram
			ok = wantCount
		} else if base, found := strings.CutSuffix(name, "_sum"); found {
			f, ok = r.families[base]
			wantSum = ok && f.kind == kindHistogram
			ok = wantSum
		}
	}
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	key := labelKey(labels)
	f.mu.Lock()
	s, ok := f.series[key]
	f.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch {
	case wantCount:
		return float64(s.h.Count()), true
	case wantSum:
		return s.h.Sum(), true
	}
	switch f.kind {
	case kindCounter:
		return float64(s.c.Value()), true
	case kindGauge:
		return s.g.Value(), true
	}
	return 0, false
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families and series in deterministic
// sorted order. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sers := make([]*series, 0, len(keys))
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.Unlock()

	for _, s := range sers {
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(b, s.labels)
			fmt.Fprintf(b, " %d\n", s.c.Value())
		case kindGauge:
			b.WriteString(f.name)
			writeLabels(b, s.labels)
			fmt.Fprintf(b, " %s\n", formatFloat(s.g.Value()))
		case kindHistogram:
			counts, sum, n := s.h.snapshot()
			cum := uint64(0)
			for i, bound := range f.bounds {
				cum += counts[i]
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, append(append([]Label(nil), s.labels...),
					Label{"le", formatFloat(bound)}))
				fmt.Fprintf(b, " %d\n", cum)
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, append(append([]Label(nil), s.labels...), Label{"le", "+Inf"}))
			fmt.Fprintf(b, " %d\n", n)
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, s.labels)
			fmt.Fprintf(b, " %s\n", formatFloat(sum))
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, s.labels)
			fmt.Fprintf(b, " %d\n", n)
		}
	}
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey is the canonical identity of a label set within a family.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

func mustValidName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func mustValidLabelKey(key string) {
	if !validLabelKey(key) {
		panic(fmt.Sprintf("telemetry: invalid label key %q", key))
	}
}

// validMetricName implements [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey implements [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
