package telemetry

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheus is the table-driven exposition-format suite: name and
// help escaping, label rendering, histogram cumulative buckets and the
// _sum/_count series, and deterministic ordering.
func TestWritePrometheus(t *testing.T) {
	cases := []struct {
		name  string
		setup func(r *Registry)
		want  []string // exact lines that must appear, in this relative order
	}{
		{
			name: "counter basic",
			setup: func(r *Registry) {
				r.Counter("dcfp_epochs_total", "Epochs observed.").Add(3)
			},
			want: []string{
				"# HELP dcfp_epochs_total Epochs observed.",
				"# TYPE dcfp_epochs_total counter",
				"dcfp_epochs_total 3",
			},
		},
		{
			name: "help escaping",
			setup: func(r *Registry) {
				r.Counter("c_total", "line one\nback\\slash").Inc()
			},
			want: []string{
				`# HELP c_total line one\nback\\slash`,
				"c_total 1",
			},
		},
		{
			name: "label value escaping",
			setup: func(r *Registry) {
				r.Counter("c_total", "h", Label{"path", `a"b\c` + "\n"}).Inc()
			},
			want: []string{
				`c_total{path="a\"b\\c\n"} 1`,
			},
		},
		{
			name: "labeled series sorted by label key and value",
			setup: func(r *Registry) {
				r.Counter("stage_total", "h", Label{"stage", "sla"}).Add(2)
				r.Counter("stage_total", "h", Label{"stage", "quantile"}).Add(5)
			},
			want: []string{
				`stage_total{stage="quantile"} 5`,
				`stage_total{stage="sla"} 2`,
			},
		},
		{
			name: "gauge formatting",
			setup: func(r *Registry) {
				r.Gauge("g", "h").Set(2.5)
				r.Gauge("g2", "h").SetInt(-7)
			},
			want: []string{
				"# TYPE g gauge",
				"g 2.5",
				"g2 -7",
			},
		},
		{
			name: "histogram cumulative buckets, +Inf, sum and count",
			setup: func(r *Registry) {
				h := r.Histogram("lat_seconds", "h", []float64{0.1, 0.5, 1})
				h.Observe(0.0625) // bucket le=0.1 (exact binary float)
				h.Observe(0.0625) // bucket le=0.1
				h.Observe(0.5)    // boundary lands in le=0.5
				h.Observe(3)      // only +Inf
			},
			want: []string{
				"# TYPE lat_seconds histogram",
				`lat_seconds_bucket{le="0.1"} 2`,
				`lat_seconds_bucket{le="0.5"} 3`,
				`lat_seconds_bucket{le="1"} 3`,
				`lat_seconds_bucket{le="+Inf"} 4`,
				"lat_seconds_sum 3.625",
				"lat_seconds_count 4",
			},
		},
		{
			name: "histogram with constant labels keeps le last",
			setup: func(r *Registry) {
				r.Histogram("stage_seconds", "h", []float64{1}, Label{"stage", "identify"}).Observe(0.5)
			},
			want: []string{
				`stage_seconds_bucket{stage="identify",le="1"} 1`,
				`stage_seconds_bucket{stage="identify",le="+Inf"} 1`,
				`stage_seconds_sum{stage="identify"} 0.5`,
				`stage_seconds_count{stage="identify"} 1`,
			},
		},
		{
			name: "families sorted by name",
			setup: func(r *Registry) {
				r.Counter("zzz_total", "h").Inc()
				r.Counter("aaa_total", "h").Inc()
			},
			want: []string{
				"aaa_total 1",
				"zzz_total 1",
			},
		},
		{
			name: "small float renders in exponent form",
			setup: func(r *Registry) {
				r.Histogram("t_seconds", "h", []float64{1e-6, 1}).Observe(2)
			},
			want: []string{
				`t_seconds_bucket{le="1e-06"} 0`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.setup(r)
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			got := buf.String()
			pos := -1
			for _, line := range tc.want {
				idx := indexLine(got, line)
				if idx < 0 {
					t.Fatalf("missing line %q in output:\n%s", line, got)
				}
				if idx < pos {
					t.Fatalf("line %q out of order in output:\n%s", line, got)
				}
				pos = idx
			}
		})
	}
}

// indexLine finds an exact line match and returns its index, -1 if absent.
func indexLine(s, line string) int {
	for i, l := range strings.Split(s, "\n") {
		if l == line {
			return i
		}
	}
	return -1
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", Label{"k", "v"})
	b := r.Counter("c_total", "h", Label{"k", "v"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("c_total", "h", Label{"k", "w"})
	if a == other {
		t.Fatal("different label value must return a different series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d", b.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("m", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("want panic for name %q", bad)
				}
			}()
			r.Counter(bad, "h")
		}()
	}
}

// TestNilSafety: a nil registry hands out nil handles and every operation
// on them is a no-op — the "telemetry disabled" contract library code
// relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "h")
	g := r.Gauge("g", "h")
	h := r.Histogram("h_seconds", "h", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	g.SetInt(3)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var e *EventLog
	if e.Enabled() {
		t.Fatal("nil event log must report disabled")
	}
	e.Event("x")
	e.CrisisDetected(1, "c")
	e.AdviceEmitted(1, "c", 0, "known", "l", "l", 0.1, 0.2, 3)
	e.CrisisEnded(2, "c", 1, true)
	e.CrisisResolved("c", "l")
	e.SimDay(1, 95, 0, 0)
	e.CrisisInjected("c", "B", 5, 8)
	if NewEventLog(nil) != nil {
		t.Fatal("NewEventLog(nil) must return nil")
	}
}

// TestRegistryConcurrency hammers counters, gauges and one histogram from
// many goroutines while rendering concurrently; correctness is checked via
// final totals and the -race detector.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hammer_total", "h")
			g := r.Gauge("hammer_gauge", "h")
			h := r.Histogram("hammer_seconds", "h", TimeBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) * 1e-5)
				if i%500 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "h").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("hammer_gauge", "h").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("hammer_seconds", "h", TimeBuckets()).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestEventLogAttrs(t *testing.T) {
	var buf bytes.Buffer
	e := NewEventLog(slog.New(slog.NewTextHandler(&buf, nil)))
	if !e.Enabled() {
		t.Fatal("want enabled")
	}
	e.CrisisDetected(42, "crisis-001")
	e.AdviceEmitted(43, "crisis-001", 1, "known", "db-overload", "db-overload", 0.5, 1.2, 4)
	out := buf.String()
	for _, want := range []string{"crisis.detected", "epoch=42", "crisis=crisis-001",
		"advice.emitted", "verdict=known", "candidates=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("event output missing %q:\n%s", want, out)
		}
	}
}

func TestLinearBuckets(t *testing.T) {
	got := LinearBuckets(1, 2, 3)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LinearBuckets = %v", got)
		}
	}
}
