package telemetry

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestServeGracefulShutdown checks the Serve/Shutdown pair drains in-flight
// requests: a request already inside the handler when Shutdown begins must
// complete with its full response, and the listener must refuse new
// connections afterwards.
func TestServeGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "drained")
	})

	srv, addr, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	// Begin shutdown while the request is parked inside the handler.
	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownDone <- srv.Shutdown(ctx) }()

	// Shutdown must wait for the handler, not abort it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	select {
	case r := <-got:
		if r.err != nil || r.body != "drained" {
			t.Fatalf("in-flight request got (%q, %v), want full response", r.body, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown never returned after the handler finished")
	}

	// The listener is closed: new requests must fail to connect.
	if _, err := http.Get("http://" + addr + "/slow"); err == nil {
		t.Fatal("request succeeded after shutdown, want connection error")
	}
}
