package telemetry

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing: a lightweight, stdlib-only span facility for the per-epoch
// pipeline. One Trace covers one epoch's journey through the monitor
// (ingest → filter → summarize → fingerprint → match → advise); Spans nest
// parent-child via an open-span stack, carry integer attributes (row and
// machine counts, candidate counts), and completed traces land in a bounded
// ring buffer the /traces endpoint snapshots.
//
// Like the rest of the package, tracing follows the nil-is-disabled
// convention, but with a harder guarantee: with a nil Tracer the entire
// span path — StartTrace, StartSpan, SetAttr, End — is a zero-allocation
// no-op (verified by TestDisabledTracingZeroAlloc), so the monitor hot path
// can be instrumented unconditionally.
//
// Concurrency: a Tracer is safe for concurrent use — many goroutines may
// each build their own Trace and End them concurrently; only End touches
// the shared ring, under the Tracer's mutex. One Trace (and its Spans) is
// single-goroutine, matching the Monitor's feeding-goroutine contract.

// Attr is one integer attribute attached to a span or trace — counts and
// sizes, deliberately not free-form strings, so recording one never formats.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// EpochTraceID derives the fleet-wide distributed trace ID for an epoch.
// Every process in the fleet computes the same ID from the epoch number
// alone (a splitmix64-style bit mix), so aggregator observe_shard traces
// and the coordinator merge_epoch trace stitch into one distributed trace
// with zero coordination and nothing extra on the wire beyond the frame's
// epoch. The mix keeps IDs well-spread (epoch 0 is not trace 0) so they
// read as opaque trace IDs, and is injective over int64 inputs.
func EpochTraceID(epoch int64) uint64 {
	z := uint64(epoch) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Tracer owns the ring buffer of the most recently completed traces.
type Tracer struct {
	capacity int
	nextID   atomic.Uint64

	mu    sync.Mutex
	ring  []TraceSnapshot // fixed-capacity circular buffer
	pos   int             // next write slot
	count uint64          // total traces ever completed
}

// NewTracer returns a tracer retaining the capacity most recently completed
// traces. A capacity below 1 returns nil — the disabled tracer, on which
// every tracing call is a zero-allocation no-op.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		return nil
	}
	return &Tracer{capacity: capacity, ring: make([]TraceSnapshot, 0, capacity)}
}

// Enabled reports whether traces are actually recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Capacity reports the ring size (0 when disabled).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// Total reports how many traces have completed since construction,
// including ones the ring has since evicted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// span is the in-flight representation of one pipeline stage.
type span struct {
	name   string
	parent int // index into Trace.spans; -1 = root
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// Trace is one in-flight trace: a named root with nested spans. Build it
// with StartSpan/End calls and finish with End, which files the completed
// trace into the tracer's ring. All methods are no-ops on a nil receiver.
type Trace struct {
	tracer  *Tracer
	id      uint64
	traceID uint64 // cross-process trace context; 0 = local-only
	name    string
	start   time.Time
	attrs   []Attr
	spans   []span
	open    []int // stack of started-but-unended span indices
}

// StartTrace begins a trace; nil (a no-op trace) on a disabled tracer.
func (t *Tracer) StartTrace(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		tracer: t,
		id:     t.nextID.Add(1),
		name:   name,
		start:  time.Now(),
	}
}

// StartTraceID begins a trace carrying an explicit cross-process trace ID
// (typically EpochTraceID). Traces in different processes started with the
// same ID are fragments of one distributed trace; /traces consumers join
// them on TraceID. Returns nil on a disabled tracer.
func (t *Tracer) StartTraceID(name string, traceID uint64) *Trace {
	tr := t.StartTrace(name)
	if tr != nil {
		tr.traceID = traceID
	}
	return tr
}

// TraceID returns the propagated cross-process trace ID (0 when the trace
// is local-only or nil).
func (tr *Trace) TraceID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.traceID
}

// SetAttr attaches an integer attribute to the trace itself. Re-setting a
// key overwrites it — multiple pipeline layers annotate the same trace
// (the coordinator and the monitor both stamp "epoch") and the snapshot
// should carry each key once.
func (tr *Trace) SetAttr(key string, value int64) {
	if tr == nil {
		return
	}
	for i := range tr.attrs {
		if tr.attrs[i].Key == key {
			tr.attrs[i].Value = value
			return
		}
	}
	tr.attrs = append(tr.attrs, Attr{Key: key, Value: value})
}

// Span is a handle to one started span within a trace. The zero of the
// disabled path is a nil *Span; all methods are no-ops on it.
type Span struct {
	tr  *Trace
	idx int
}

// StartSpan opens a new span nested under the innermost span still open
// (or under the trace root when none is). Returns nil on a nil trace.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	parent := -1
	if n := len(tr.open); n > 0 {
		parent = tr.open[n-1]
	}
	idx := len(tr.spans)
	tr.spans = append(tr.spans, span{name: name, parent: parent, start: time.Now()})
	tr.open = append(tr.open, idx)
	return &Span{tr: tr, idx: idx}
}

// SetAttr attaches an integer attribute to the span.
func (s *Span) SetAttr(key string, value int64) {
	if s == nil {
		return
	}
	sp := &s.tr.spans[s.idx]
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// End closes the span. Ending out of order is tolerated: the span is
// removed from wherever it sits in the open stack, so a forgotten inner
// End cannot corrupt later parentage. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.tr
	sp := &tr.spans[s.idx]
	if !sp.end.IsZero() {
		return
	}
	sp.end = time.Now()
	for i := len(tr.open) - 1; i >= 0; i-- {
		if tr.open[i] == s.idx {
			tr.open = append(tr.open[:i], tr.open[i+1:]...)
			break
		}
	}
}

// CompletedSpans snapshots the spans that have already ended, in start
// order, with offsets relative to the trace start. Spans still open (and
// their not-yet-meaningful durations) are skipped; a completed span whose
// parent is still open is re-parented to its nearest completed ancestor.
// This is the wire form an aggregator embeds in a fleet frame before the
// ship span — which is by definition still open — begins. Nil-safe.
func (tr *Trace) CompletedSpans() []SpanSnapshot {
	if tr == nil {
		return nil
	}
	remap := make([]int, len(tr.spans))
	out := make([]SpanSnapshot, 0, len(tr.spans))
	for i, sp := range tr.spans {
		if sp.end.IsZero() {
			remap[i] = -1
			continue
		}
		remap[i] = len(out)
		parent := sp.parent
		for parent >= 0 && remap[parent] < 0 {
			parent = tr.spans[parent].parent
		}
		if parent >= 0 {
			parent = remap[parent]
		}
		out = append(out, SpanSnapshot{
			Name:               sp.name,
			Parent:             parent,
			StartOffsetSeconds: sp.start.Sub(tr.start).Seconds(),
			DurationSeconds:    sp.end.Sub(sp.start).Seconds(),
			Attrs:              append([]Attr(nil), sp.attrs...),
		})
	}
	return out
}

// Graft splices a remote process's span snapshots into this trace under a
// new closed anchor span (nested under the innermost open span, like
// StartSpan). Remote offsets are preserved relative to this trace's start:
// the two fragments describe the same epoch, so aligning their trace
// starts yields per-shard timing breakdowns without requiring synchronized
// clocks — cross-process skew is reported separately (the coordinator
// attaches arrival-offset attrs to the anchor) rather than baked into span
// positions. Remote parent indices are rebased; out-of-range parents
// attach to the anchor.
func (tr *Trace) Graft(name string, remote []SpanSnapshot, attrs ...Attr) {
	if tr == nil {
		return
	}
	parent := -1
	if n := len(tr.open); n > 0 {
		parent = tr.open[n-1]
	}
	anchor := len(tr.spans)
	tr.spans = append(tr.spans, span{
		name:   name,
		parent: parent,
		start:  tr.start,
		end:    tr.start,
		attrs:  append([]Attr(nil), attrs...),
	})
	base := len(tr.spans)
	minStart, maxEnd := time.Time{}, tr.start
	for _, rs := range remote {
		p := anchor
		if rs.Parent >= 0 && rs.Parent < len(remote) {
			p = base + rs.Parent
		}
		st := tr.start.Add(time.Duration(rs.StartOffsetSeconds * float64(time.Second)))
		en := st.Add(time.Duration(rs.DurationSeconds * float64(time.Second)))
		tr.spans = append(tr.spans, span{
			name:   rs.Name,
			parent: p,
			start:  st,
			end:    en,
			attrs:  append([]Attr(nil), rs.Attrs...),
		})
		if minStart.IsZero() || st.Before(minStart) {
			minStart = st
		}
		if en.After(maxEnd) {
			maxEnd = en
		}
	}
	if !minStart.IsZero() {
		tr.spans[anchor].start = minStart
	}
	tr.spans[anchor].end = maxEnd
}

// End completes the trace: any spans still open are closed at the trace's
// end time, and the finished trace is filed into the tracer's ring buffer,
// evicting the oldest entry once the ring is full. Ending twice files once.
func (tr *Trace) End() {
	if tr == nil || tr.tracer == nil {
		return
	}
	end := time.Now()
	for _, idx := range tr.open {
		tr.spans[idx].end = end
	}
	tr.open = nil
	snap := tr.snapshot(end)
	t := tr.tracer
	tr.tracer = nil // second End is a no-op
	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.pos] = snap
	}
	t.pos = (t.pos + 1) % t.capacity
	t.count++
	t.mu.Unlock()
}

// SpanSnapshot is the immutable JSON form of one completed span.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Parent is the index of the parent span within the trace's Spans
	// (-1 for spans directly under the trace root).
	Parent int `json:"parent"`
	// StartOffsetSeconds is the span start relative to the trace start.
	StartOffsetSeconds float64 `json:"start_offset_seconds"`
	DurationSeconds    float64 `json:"duration_seconds"`
	Attrs              []Attr  `json:"attrs,omitempty"`
}

// TraceSnapshot is the immutable JSON form of one completed trace.
type TraceSnapshot struct {
	ID uint64 `json:"id"`
	// TraceID is the propagated cross-process trace ID (hex; omitted for
	// local-only traces). Snapshots from different processes with the same
	// TraceID are fragments of one distributed trace.
	TraceID         string         `json:"trace_id,omitempty"`
	Name            string         `json:"name"`
	StartUnixNano   int64          `json:"start_unix_nano"`
	DurationSeconds float64        `json:"duration_seconds"`
	Attrs           []Attr         `json:"attrs,omitempty"`
	Spans           []SpanSnapshot `json:"spans"`
}

// snapshot freezes the trace. Attr slices move, not copy: the Trace is
// dead after End, so nothing else aliases them.
func (tr *Trace) snapshot(end time.Time) TraceSnapshot {
	snap := TraceSnapshot{
		ID:              tr.id,
		Name:            tr.name,
		StartUnixNano:   tr.start.UnixNano(),
		DurationSeconds: end.Sub(tr.start).Seconds(),
		Attrs:           tr.attrs,
		Spans:           make([]SpanSnapshot, len(tr.spans)),
	}
	if tr.traceID != 0 {
		snap.TraceID = strconv.FormatUint(tr.traceID, 16)
	}
	for i, sp := range tr.spans {
		snap.Spans[i] = SpanSnapshot{
			Name:               sp.name,
			Parent:             sp.parent,
			StartOffsetSeconds: sp.start.Sub(tr.start).Seconds(),
			DurationSeconds:    sp.end.Sub(sp.start).Seconds(),
			Attrs:              sp.attrs,
		}
	}
	return snap
}

// Snapshots returns the retained traces, most recently completed first.
// Always non-nil, so JSON callers render [] rather than null; empty on a
// disabled tracer.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return []TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(t.ring))
	// t.pos-1 is the most recent write; walk backwards.
	for i := 0; i < len(t.ring); i++ {
		out = append(out, t.ring[(t.pos-1-i+2*len(t.ring))%len(t.ring)])
	}
	return out
}

// Latest returns the most recently completed trace, ok=false when none.
func (t *Tracer) Latest() (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return TraceSnapshot{}, false
	}
	idx := (t.pos - 1 + len(t.ring)) % len(t.ring)
	return t.ring[idx], true
}
