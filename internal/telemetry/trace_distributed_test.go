package telemetry

import (
	"strconv"
	"testing"
)

func TestEpochTraceIDDeterministicAndSpread(t *testing.T) {
	seen := make(map[uint64]int64)
	for e := int64(0); e < 10_000; e++ {
		id := EpochTraceID(e)
		if id2 := EpochTraceID(e); id2 != id {
			t.Fatalf("epoch %d: nondeterministic id %x vs %x", e, id, id2)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("epochs %d and %d collide on trace id %x", prev, e, id)
		}
		seen[id] = e
	}
	if EpochTraceID(0) == 0 {
		t.Fatal("epoch 0 maps to trace id 0 (reads as local-only)")
	}
}

func TestStartTraceIDPropagatesIntoSnapshot(t *testing.T) {
	tc := NewTracer(4)
	id := EpochTraceID(42)
	tr := tc.StartTraceID("observe_shard", id)
	if tr.TraceID() != id {
		t.Fatalf("TraceID() = %x, want %x", tr.TraceID(), id)
	}
	tr.End()
	snap, ok := tc.Latest()
	if !ok || snap.TraceID != strconv.FormatUint(id, 16) {
		t.Fatalf("snapshot trace_id = %q, want %q", snap.TraceID, strconv.FormatUint(id, 16))
	}

	// Local-only traces must keep the omitted zero form.
	tc.StartTrace("local").End()
	if snap, _ = tc.Latest(); snap.TraceID != "" {
		t.Fatalf("local trace carries trace_id %q", snap.TraceID)
	}
}

func TestCompletedSpansSkipsOpenAndRemapsParents(t *testing.T) {
	tc := NewTracer(1)
	tr := tc.StartTrace("observe_shard")
	ing := tr.StartSpan("ingest")
	f := tr.StartSpan("filter") // child of ingest
	f.SetAttr("lo", 0)
	f.End()
	ing.End()
	open := tr.StartSpan("ship") // still open
	inner := tr.StartSpan("post")
	inner.End() // completed child of an OPEN parent

	spans := tr.CompletedSpans()
	open.End()
	tr.End()

	if len(spans) != 3 {
		t.Fatalf("completed spans = %d, want 3 (%+v)", len(spans), spans)
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if _, ok := byName["ship"]; ok {
		t.Fatal("open ship span leaked into completed set")
	}
	if byName["ingest"].Parent != -1 {
		t.Fatalf("ingest parent = %d, want -1", byName["ingest"].Parent)
	}
	if got := spans[byName["filter"].Parent].Name; got != "ingest" {
		t.Fatalf("filter reparented to %q, want ingest", got)
	}
	// post's parent (ship) was open, so it re-parents to ship's parent: root.
	if byName["post"].Parent != -1 {
		t.Fatalf("post parent = %d, want -1 (nearest completed ancestor)", byName["post"].Parent)
	}
	if len(byName["filter"].Attrs) != 1 || byName["filter"].Attrs[0].Key != "lo" {
		t.Fatalf("filter attrs lost: %+v", byName["filter"].Attrs)
	}
}

func TestGraftSplicesRemoteSpans(t *testing.T) {
	tc := NewTracer(2)

	// Remote fragment: what an aggregator would embed in a frame.
	remoteTr := tc.StartTrace("observe_shard")
	ing := remoteTr.StartSpan("ingest")
	remoteTr.StartSpan("filter").End()
	ing.End()
	remote := remoteTr.CompletedSpans()
	remoteTr.End()

	tr := tc.StartTrace("merge_epoch")
	collect := tr.StartSpan("collect")
	tr.Graft("shard_0", remote, Attr{Key: "shard", Value: 0}, Attr{Key: "arrival_offset_micros", Value: 1500})
	collect.End()
	tr.End()

	snap, _ := tc.Latest()
	if snap.Name != "merge_epoch" {
		t.Fatalf("latest trace %q", snap.Name)
	}
	idx := map[string]int{}
	for i, s := range snap.Spans {
		idx[s.Name] = i
	}
	anchor, ok := idx["shard_0"]
	if !ok {
		t.Fatalf("anchor span missing: %+v", snap.Spans)
	}
	if snap.Spans[anchor].Parent != idx["collect"] {
		t.Fatalf("anchor parent = %d, want collect (%d)", snap.Spans[anchor].Parent, idx["collect"])
	}
	if got := snap.Spans[anchor].Attrs; len(got) != 2 || got[1].Value != 1500 {
		t.Fatalf("anchor attrs: %+v", got)
	}
	// Remote root re-parents to the anchor; nested remote parentage is
	// rebased, not flattened.
	if snap.Spans[idx["ingest"]].Parent != anchor {
		t.Fatalf("remote ingest parent = %d, want anchor %d", snap.Spans[idx["ingest"]].Parent, anchor)
	}
	if snap.Spans[idx["filter"]].Parent != idx["ingest"] {
		t.Fatalf("remote filter parent = %d, want ingest %d", snap.Spans[idx["filter"]].Parent, idx["ingest"])
	}
	// The anchor's extent covers its children (offsets are trace-relative).
	a := snap.Spans[anchor]
	c := snap.Spans[idx["ingest"]]
	if c.StartOffsetSeconds < a.StartOffsetSeconds-1e-9 {
		t.Fatalf("child starts before anchor: %v < %v", c.StartOffsetSeconds, a.StartOffsetSeconds)
	}
	if end, aEnd := c.StartOffsetSeconds+c.DurationSeconds, a.StartOffsetSeconds+a.DurationSeconds; end > aEnd+1e-9 {
		t.Fatalf("child ends after anchor: %v > %v", end, aEnd)
	}
}

func TestGraftEmptyRemote(t *testing.T) {
	tc := NewTracer(1)
	tr := tc.StartTrace("merge_epoch")
	tr.Graft("shard_1", nil, Attr{Key: "shard", Value: 1})
	tr.End()
	snap, _ := tc.Latest()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "shard_1" {
		t.Fatalf("empty graft spans: %+v", snap.Spans)
	}
	// A nil trace tolerates grafting (disabled-tracer path).
	var nilTr *Trace
	nilTr.Graft("shard_2", nil)
}
