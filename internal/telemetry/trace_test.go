package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTraceSpanNesting(t *testing.T) {
	tracer := NewTracer(4)
	tr := tracer.StartTrace("epoch")
	tr.SetAttr("epoch", 7)

	ingest := tr.StartSpan("ingest")
	ingest.SetAttr("machines", 100)
	ingest.End()

	identify := tr.StartSpan("identify")
	fp := tr.StartSpan("fingerprint") // nested under identify
	fp.End()
	match := tr.StartSpan("match")
	match.SetAttr("candidates", 3)
	match.End()
	identify.End()
	tr.End()

	snap, ok := tracer.Latest()
	if !ok {
		t.Fatal("no trace recorded")
	}
	if snap.Name != "epoch" || snap.ID == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Attrs) != 1 || snap.Attrs[0] != (Attr{Key: "epoch", Value: 7}) {
		t.Fatalf("trace attrs = %+v", snap.Attrs)
	}
	wantParents := map[string]int{"ingest": -1, "identify": -1, "fingerprint": 1, "match": 1}
	if len(snap.Spans) != len(wantParents) {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	for i, sp := range snap.Spans {
		if want, ok := wantParents[sp.Name]; !ok || sp.Parent != want {
			t.Fatalf("span %d %q parent = %d, want %d", i, sp.Name, sp.Parent, want)
		}
		if sp.DurationSeconds < 0 || sp.StartOffsetSeconds < 0 {
			t.Fatalf("span %q has negative timing: %+v", sp.Name, sp)
		}
	}
	if snap.Spans[3].Attrs[0] != (Attr{Key: "candidates", Value: 3}) {
		t.Fatalf("match attrs = %+v", snap.Spans[3].Attrs)
	}

	// Snapshots must be JSON-encodable for the /traces endpoint.
	if _, err := json.Marshal(tracer.Snapshots()); err != nil {
		t.Fatal(err)
	}
}

// TestTraceEndClosesOpenSpans: a trace ended with spans still open must
// close them rather than leak zero end times, and a second trace End must
// not double-file.
func TestTraceEndClosesOpenSpans(t *testing.T) {
	tracer := NewTracer(2)
	tr := tracer.StartTrace("epoch")
	tr.StartSpan("ingest") // never ended
	sp := tr.StartSpan("filter")
	sp.End()
	sp.End() // double span End is a no-op
	tr.End()
	tr.End() // double trace End files once

	if got := tracer.Total(); got != 1 {
		t.Fatalf("Total = %d, want 1", got)
	}
	snap, _ := tracer.Latest()
	for _, s := range snap.Spans {
		if s.DurationSeconds < 0 {
			t.Fatalf("span %q not closed: %+v", s.Name, s)
		}
	}
}

// TestTraceRetention: the ring keeps exactly the configured N most recent
// traces under concurrent trace production (run with -race).
func TestTraceRetention(t *testing.T) {
	const capacity = 16
	const workers = 8
	const perWorker = 50
	tracer := NewTracer(capacity)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr := tracer.StartTrace(fmt.Sprintf("epoch-%d-%d", w, i))
				sp := tr.StartSpan("ingest")
				sp.SetAttr("machines", int64(i))
				sp.End()
				tr.End()
			}
		}(w)
	}
	wg.Wait()

	if got := tracer.Total(); got != workers*perWorker {
		t.Fatalf("Total = %d, want %d", got, workers*perWorker)
	}
	snaps := tracer.Snapshots()
	if len(snaps) != capacity {
		t.Fatalf("retained %d traces, want exactly %d", len(snaps), capacity)
	}
	seen := map[uint64]bool{}
	for _, s := range snaps {
		if seen[s.ID] {
			t.Fatalf("trace %d retained twice", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestTraceSnapshotOrder: snapshots come back most recently completed
// first, and the ring evicts oldest-first once full.
func TestTraceSnapshotOrder(t *testing.T) {
	tracer := NewTracer(3)
	for i := 0; i < 5; i++ {
		tracer.StartTrace(fmt.Sprintf("t%d", i)).End()
	}
	snaps := tracer.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("retained %d, want 3", len(snaps))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if snaps[i].Name != want {
			t.Fatalf("snapshot %d = %q, want %q (order %v)", i, snaps[i].Name, want, snaps)
		}
	}
}

// TestDisabledTracingZeroAlloc is the hard guarantee the monitor hot path
// relies on: with a disabled (nil) tracer the whole span path allocates
// nothing at all.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	tracer := NewTracer(0) // capacity < 1 = disabled
	if tracer.Enabled() {
		t.Fatal("capacity-0 tracer should be disabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr := tracer.StartTrace("epoch")
		tr.SetAttr("epoch", 1)
		sp := tr.StartSpan("ingest")
		sp.SetAttr("machines", 100)
		inner := tr.StartSpan("filter")
		inner.End()
		sp.End()
		tr.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v bytes-equivalents/op, want 0", allocs)
	}
	if got := tracer.Snapshots(); len(got) != 0 {
		t.Fatalf("disabled tracer retained %d traces", len(got))
	}
	if _, ok := tracer.Latest(); ok {
		t.Fatal("disabled tracer has a latest trace")
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	tracer := NewTracer(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := tracer.StartTrace("epoch")
		sp := tr.StartSpan("ingest")
		sp.SetAttr("machines", 100)
		sp.End()
		tr.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tracer := NewTracer(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := tracer.StartTrace("epoch")
		sp := tr.StartSpan("ingest")
		sp.SetAttr("machines", 100)
		sp.End()
		tr.End()
	}
}
