// Package tracefile persists simulated datacenter traces to disk, so the
// expensive simulation runs once and every tool (cmd/experiments,
// cmd/fingerprint, notebooks built on the library) replays the same data.
//
// The format is a small header (magic + version) followed by a gzip-
// compressed gob stream. It is an internal interchange format, not a
// public contract: the version is bumped whenever the trace layout
// changes, and loading a mismatched version fails loudly rather than
// misreading data.
package tracefile

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"

	"dcfp/internal/dcsim"
)

// magic identifies dcfp trace files.
var magic = [8]byte{'D', 'C', 'F', 'P', 'T', 'R', 'C', '1'}

// version is the trace layout version.
const version uint32 = 1

// Save writes the trace to path atomically (via a temporary file renamed
// into place).
func Save(path string, tr *dcsim.Trace) (err error) {
	if tr == nil {
		return fmt.Errorf("tracefile: nil trace")
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if _, err = bw.Write(magic[:]); err != nil {
		return err
	}
	if err = binary.Write(bw, binary.LittleEndian, version); err != nil {
		return err
	}
	zw := gzip.NewWriter(bw)
	if err = gob.NewEncoder(zw).Encode(tr); err != nil {
		return fmt.Errorf("tracefile: encoding trace: %w", err)
	}
	if err = zw.Close(); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a trace written by Save.
func Load(path string) (*dcsim.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var gotMagic [8]byte
	if _, err := br.Read(gotMagic[:]); err != nil {
		return nil, fmt.Errorf("tracefile: reading header: %w", err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("tracefile: %s is not a dcfp trace file", path)
	}
	var gotVersion uint32
	if err := binary.Read(br, binary.LittleEndian, &gotVersion); err != nil {
		return nil, fmt.Errorf("tracefile: reading version: %w", err)
	}
	if gotVersion != version {
		return nil, fmt.Errorf("tracefile: version %d, this build reads %d", gotVersion, version)
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("tracefile: opening compressed stream: %w", err)
	}
	defer zr.Close()
	var tr dcsim.Trace
	if err := gob.NewDecoder(zr).Decode(&tr); err != nil {
		return nil, fmt.Errorf("tracefile: decoding trace: %w", err)
	}
	return &tr, nil
}
