package tracefile

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dcfp/internal/dcsim"
	"dcfp/internal/metrics"
)

var (
	tinyOnce sync.Once
	tinyTr   *dcsim.Trace
	tinyErr  error
)

func tinyTrace(t *testing.T) *dcsim.Trace {
	t.Helper()
	tinyOnce.Do(func() {
		cfg := dcsim.SmallConfig(7)
		cfg.BackgroundDays = 5
		cfg.UnlabeledDays = 12
		cfg.LabeledDays = 45
		cfg.UnlabeledCrises = 2
		tinyTr, tinyErr = dcsim.Simulate(cfg)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyTr
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := tinyTrace(t)
	path := filepath.Join(t.TempDir(), "trace.dcfp")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumEpochs() != tr.NumEpochs() {
		t.Fatalf("epochs %d != %d", got.NumEpochs(), tr.NumEpochs())
	}
	if got.Catalog.Len() != tr.Catalog.Len() || got.Catalog.Name(3) != tr.Catalog.Name(3) {
		t.Fatal("catalog mismatch")
	}
	if got.Config.Machines != tr.Config.Machines || got.Config.Seed != tr.Config.Seed {
		t.Fatalf("config mismatch: %+v", got.Config)
	}
	if got.Config.Workload != tr.Config.Workload {
		t.Fatalf("workload config mismatch: %+v", got.Config.Workload)
	}
	// Track contents identical at sampled points.
	for e := metrics.Epoch(0); int(e) < tr.NumEpochs(); e += 131 {
		a, _ := tr.Track.EpochRow(e)
		b, _ := got.Track.EpochRow(e)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("track differs at epoch %d col %d", e, i)
			}
		}
	}
	// Crisis bookkeeping survives.
	if len(got.Instances) != len(tr.Instances) || len(got.Episodes) != len(tr.Episodes) {
		t.Fatal("crises mismatch")
	}
	if len(got.LabeledCrises()) != len(tr.LabeledCrises()) {
		t.Fatal("labeled crises mismatch")
	}
	// FS data survives: feature-selection samples for the first crisis.
	dc := tr.LabeledCrises()[0]
	xa, ya, err := tr.FSSamples(dc.Episode, 4)
	if err != nil {
		t.Fatal(err)
	}
	xb, yb, err := got.FSSamples(dc.Episode, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(xa) != len(xb) || len(ya) != len(yb) {
		t.Fatalf("FS sample counts differ: %d/%d vs %d/%d", len(xa), len(ya), len(xb), len(yb))
	}
	for i := range xa {
		for j := range xa[i] {
			if xa[i][j] != xb[i][j] {
				t.Fatalf("FS sample differs at %d,%d", i, j)
			}
		}
	}
	// SLA status survives.
	if got.Status[100].Machines != tr.Status[100].Machines {
		t.Fatal("status mismatch")
	}
}

func TestSaveValidation(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "x"), nil); err == nil {
		t.Fatal("want nil-trace error")
	}
	if err := Save("/nonexistent-dir/deep/x", tinyTrace(t)); err == nil {
		t.Fatal("want create error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("want missing-file error")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a trace at all........."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("want magic error")
	}
	// Right magic, wrong version.
	hdr := append([]byte("DCFPTRC1"), 0xFF, 0xFF, 0xFF, 0xFF)
	vbad := filepath.Join(dir, "vbad")
	if err := os.WriteFile(vbad, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(vbad); err == nil {
		t.Fatal("want version error")
	}
	// Right header, corrupt payload.
	cbad := filepath.Join(dir, "cbad")
	good := append([]byte("DCFPTRC1"), 1, 0, 0, 0)
	if err := os.WriteFile(cbad, append(good, []byte("garbage")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(cbad); err == nil {
		t.Fatal("want payload error")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.dcfp")
	if err := Save(path, tinyTrace(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
}
