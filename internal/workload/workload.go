// Package workload synthesizes the request-load intensity driving the
// simulated datacenter.
//
// The paper's application serves several thousand enterprise customers and
// processes a few billion transactions per day, with the usual diurnal and
// weekly rhythms of a user-facing service. Crises of type A ("overloaded
// front-end") and J ("workload spike") are load-driven, so the substrate
// needs a realistic, autocorrelated intensity signal rather than white
// noise.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dcfp/internal/metrics"
)

// Config shapes the intensity signal. Intensity is normalized: 1.0 is the
// long-run average load.
type Config struct {
	// Base is the mean intensity (usually 1.0).
	Base float64
	// DiurnalAmplitude scales the daily sine cycle (0..1).
	DiurnalAmplitude float64
	// WeeklyAmplitude is the fractional weekend dip (0..1).
	WeeklyAmplitude float64
	// NoiseStd is the standard deviation of the AR(1) noise term.
	NoiseStd float64
	// AR is the lag-1 autocorrelation of the noise in [0, 1).
	AR float64
}

// DefaultConfig returns a plausible enterprise-application load shape:
// daytime peak, weekend dip, mildly autocorrelated noise. The amplitudes
// are moderate: the studied application is a 24x7 enterprise service with
// worldwide customers, so load never collapses outside business hours.
func DefaultConfig() Config {
	return Config{
		Base:             1.0,
		DiurnalAmplitude: 0.03,
		WeeklyAmplitude:  0.02,
		NoiseStd:         0.04,
		AR:               0.8,
	}
}

// Spike is a transient load surge: intensity is multiplied by Magnitude for
// Duration epochs starting at Start. Crisis type J injects one of these.
type Spike struct {
	Start     metrics.Epoch
	Duration  int
	Magnitude float64
}

// Generator produces the intensity sequence epoch by epoch.
// It is deterministic for a fixed seed and call sequence.
type Generator struct {
	cfg    Config
	spikes []Spike
	rng    *rand.Rand
	state  float64 // AR(1) noise state
	next   metrics.Epoch
}

// New returns a generator for cfg seeded deterministically.
func New(cfg Config, seed int64) (*Generator, error) {
	if cfg.Base <= 0 {
		return nil, fmt.Errorf("workload: base %v must be positive", cfg.Base)
	}
	if cfg.AR < 0 || cfg.AR >= 1 {
		return nil, fmt.Errorf("workload: AR %v out of [0,1)", cfg.AR)
	}
	if cfg.NoiseStd < 0 {
		return nil, fmt.Errorf("workload: negative noise std %v", cfg.NoiseStd)
	}
	if cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude > 1 || cfg.WeeklyAmplitude < 0 || cfg.WeeklyAmplitude > 1 {
		return nil, fmt.Errorf("workload: amplitudes must be in [0,1]")
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// AddSpike schedules a load spike. Spikes may overlap; magnitudes multiply.
func (g *Generator) AddSpike(s Spike) error {
	if s.Duration <= 0 || s.Magnitude <= 0 {
		return fmt.Errorf("workload: spike needs positive duration and magnitude, got %+v", s)
	}
	g.spikes = append(g.spikes, s)
	return nil
}

// Next returns the intensity of the next epoch in sequence.
func (g *Generator) Next() (metrics.Epoch, float64) {
	e := g.next
	g.next++

	// Diurnal cycle: peak mid-day (epoch 48 of 96), trough at night.
	dayFrac := float64(int(e)%metrics.EpochsPerDay) / float64(metrics.EpochsPerDay)
	diurnal := 1 + g.cfg.DiurnalAmplitude*math.Sin(2*math.Pi*(dayFrac-0.25))

	// Weekly cycle: days 5 and 6 of each 7-day week dip.
	day := int(e) / metrics.EpochsPerDay % 7
	weekly := 1.0
	if day >= 5 {
		weekly = 1 - g.cfg.WeeklyAmplitude
	}

	// AR(1) noise.
	g.state = g.cfg.AR*g.state + g.rng.NormFloat64()*g.cfg.NoiseStd

	// Spikes.
	spike := 1.0
	for _, s := range g.spikes {
		if e >= s.Start && int(e-s.Start) < s.Duration {
			spike *= s.Magnitude
		}
	}

	v := g.cfg.Base * diurnal * weekly * (1 + g.state) * spike
	if v < 0.05 {
		v = 0.05
	}
	return e, v
}

// Series generates the next n intensities.
func (g *Generator) Series(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		_, out[i] = g.Next()
	}
	return out
}
