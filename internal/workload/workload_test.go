package workload

import (
	"math"
	"testing"

	"dcfp/internal/metrics"
	"dcfp/internal/stats"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Base: 0},
		{Base: 1, AR: 1},
		{Base: 1, AR: -0.1},
		{Base: 1, NoiseStd: -1},
		{Base: 1, DiurnalAmplitude: 1.5},
		{Base: 1, WeeklyAmplitude: -0.2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, 1); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New(DefaultConfig(), 42)
	b, _ := New(DefaultConfig(), 42)
	sa := a.Series(500)
	sb := b.Series(500)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, sa[i], sb[i])
		}
	}
	c, _ := New(DefaultConfig(), 43)
	sc := c.Series(500)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestEpochSequence(t *testing.T) {
	g, _ := New(DefaultConfig(), 1)
	e0, _ := g.Next()
	e1, _ := g.Next()
	if e0 != 0 || e1 != 1 {
		t.Fatalf("epochs = %d, %d", e0, e1)
	}
}

func TestDiurnalShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	cfg.WeeklyAmplitude = 0
	g, _ := New(cfg, 1)
	day := g.Series(metrics.EpochsPerDay)
	// Peak should land mid-day (around epoch 48), trough near start/end.
	peakIdx := 0
	for i, v := range day {
		if v > day[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx < 40 || peakIdx > 56 {
		t.Fatalf("diurnal peak at epoch %d, want ~48", peakIdx)
	}
	mx, _ := stats.Max(day)
	mn, _ := stats.Min(day)
	if mx <= mn {
		t.Fatal("no diurnal variation")
	}
}

func TestWeekendDip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	cfg.DiurnalAmplitude = 0
	g, _ := New(cfg, 1)
	week := g.Series(7 * metrics.EpochsPerDay)
	weekdayMean := stats.MustMean(week[:5*metrics.EpochsPerDay])
	weekendMean := stats.MustMean(week[5*metrics.EpochsPerDay:])
	if weekendMean >= weekdayMean {
		t.Fatalf("weekend %v >= weekday %v", weekendMean, weekdayMean)
	}
	want := weekdayMean * (1 - cfg.WeeklyAmplitude)
	if math.Abs(weekendMean-want) > 1e-9 {
		t.Fatalf("weekend mean = %v, want %v", weekendMean, want)
	}
}

func TestSpikeMultiplies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseStd = 0
	g, _ := New(cfg, 1)
	if err := g.AddSpike(Spike{Start: 10, Duration: 3, Magnitude: 2}); err != nil {
		t.Fatal(err)
	}
	ref, _ := New(cfg, 1)
	s := g.Series(20)
	r := ref.Series(20)
	for i := range s {
		want := r[i]
		if i >= 10 && i < 13 {
			want *= 2
		}
		if math.Abs(s[i]-want) > 1e-9 {
			t.Fatalf("epoch %d: %v, want %v", i, s[i], want)
		}
	}
}

func TestSpikeValidation(t *testing.T) {
	g, _ := New(DefaultConfig(), 1)
	if err := g.AddSpike(Spike{Duration: 0, Magnitude: 2}); err == nil {
		t.Fatal("want duration error")
	}
	if err := g.AddSpike(Spike{Duration: 5, Magnitude: 0}); err == nil {
		t.Fatal("want magnitude error")
	}
}

func TestIntensityPositiveAndBounded(t *testing.T) {
	g, _ := New(DefaultConfig(), 7)
	s := g.Series(10000)
	for i, v := range s {
		if v < 0.05 || v > 10 || math.IsNaN(v) {
			t.Fatalf("epoch %d: intensity %v out of sane range", i, v)
		}
	}
	m := stats.MustMean(s)
	if m < 0.5 || m > 1.5 {
		t.Fatalf("long-run mean %v far from base 1.0", m)
	}
}

func TestNoiseAutocorrelation(t *testing.T) {
	cfg := Config{Base: 1, NoiseStd: 0.1, AR: 0.9}
	g, _ := New(cfg, 3)
	s := g.Series(20000)
	m := stats.MustMean(s)
	num, den := 0.0, 0.0
	for i := 1; i < len(s); i++ {
		num += (s[i] - m) * (s[i-1] - m)
	}
	for _, v := range s {
		den += (v - m) * (v - m)
	}
	if ac := num / den; ac < 0.7 {
		t.Fatalf("lag-1 autocorrelation %v, want strong (>0.7) for AR=0.9", ac)
	}
}
