// Command benchgate guards the hot-path benchmarks against performance
// regressions. It runs the steady-state ingestion, epoch-generation, and
// fleet wire-codec benchmarks (`go test -bench
// 'ObserveEpoch|EpochGen|FrameCodec|FleetEpochThroughput' -benchmem`),
// records every result in a JSON baseline (benchmark name → ns/op, B/op,
// allocs/op), and exits non-zero when any benchmark's ns/op or allocs/op
// regresses beyond its tolerance against the committed baseline, or when a
// benchmark runs without a committed baseline entry (so new benchmarks
// cannot land ungated — refresh with -update). Allocation counts are
// near-deterministic, so the allocs gate uses a tighter fractional tolerance
// plus a two-alloc absolute grace for tiny baselines.
//
// Usage:
//
//	go run ./tools/benchgate            # gate against BENCH_5.json, then rewrite it
//	go run ./tools/benchgate -update    # refresh the baseline without gating
//
// Benchmark names are recorded without the trailing -GOMAXPROCS suffix so a
// baseline measured on an N-core box still matches on CI. ns/op is taken as
// the minimum across -count runs — the standard way to strip scheduler noise
// from a shared runner.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded operating point.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchLine matches `BenchmarkName-8  100  12345 ns/op  678 B/op  9 allocs/op`,
// tolerating extra value/unit columns between ns/op and B/op — SetBytes adds
// `328.73 MB/s` and ReportMetric adds custom units like `1815 frames/s`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ \S+)*?\s+([\d.]+) B/op\s+([\d.]+) allocs/op`)

// gomaxprocsSuffix strips the -N procs suffix Go appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_5.json", "baseline file to gate against and rewrite")
		tolerance = flag.Float64("tolerance", 0.05, "allowed fractional ns/op regression before failing")
		allocTol  = flag.Float64("alloc-tolerance", 0.10, "allowed fractional allocs/op regression (plus 2 allocs grace) before failing")
		count     = flag.Int("count", 3, "benchmark repetitions; the minimum ns/op is recorded")
		benchtime = flag.String("benchtime", "", "optional -benchtime passed through to go test")
		update    = flag.Bool("update", false, "rewrite the baseline without gating")
	)
	flag.Parse()

	old, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	args := []string{"test", "-run", "^$", "-bench", "ObserveEpoch|EpochGen|FrameCodec|FleetEpochThroughput",
		"-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, "./internal/monitor/", "./internal/dcsim/", "./internal/fleet/")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: go %s: %v\n%s", strings.Join(args, " "), err, out)
		os.Exit(1)
	}
	fmt.Print(string(out))

	cur := parse(string(out))
	if len(cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results parsed")
		os.Exit(1)
	}
	if err := save(*baseline, cur); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *baseline, len(cur))

	if *update || old == nil {
		return
	}
	failed := false
	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		was := old[name]
		now, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: present in baseline but not in this run\n", name)
			failed = true
			continue
		}
		limit := was.NsPerOp * (1 + *tolerance)
		if now.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%\n",
				name, now.NsPerOp, was.NsPerOp, *tolerance*100)
			failed = true
		}
		allocLimit := was.AllocsPerOp*(1+*allocTol) + 2
		if now.AllocsPerOp > allocLimit {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %.0f allocs/op exceeds baseline %.0f allocs/op (limit %.0f)\n",
				name, now.AllocsPerOp, was.AllocsPerOp, allocLimit)
			failed = true
		}
	}
	// A committed benchmark with no baseline entry would run ungated
	// forever; force a deliberate -update instead.
	curNames := make([]string, 0, len(cur))
	for name := range cur {
		curNames = append(curNames, name)
	}
	sort.Strings(curNames)
	for _, name := range curNames {
		if _, ok := old[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: ran without a baseline entry (run with -update to baseline it)\n", name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchgate: all %d baselined benchmarks within %.0f%% ns/op and %.0f%% allocs/op of baseline\n",
		len(old), *tolerance*100, *allocTol*100)
}

// parse extracts the best (minimum-ns) result per benchmark name.
func parse(out string) map[string]Result {
	results := map[string]Result{}
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		ns, _ := strconv.ParseFloat(m[2], 64)
		bs, _ := strconv.ParseFloat(m[3], 64)
		al, _ := strconv.ParseFloat(m[4], 64)
		if prev, ok := results[name]; !ok || ns < prev.NsPerOp {
			results[name] = Result{NsPerOp: ns, BytesPerOp: bs, AllocsPerOp: al}
		}
	}
	return results
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out map[string]Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return out, nil
}

func save(path string, results map[string]Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
