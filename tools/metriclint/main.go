// Command metriclint statically audits every telemetry metric
// registration in the tree (non-test Go sources) and fails CI when the
// metric surface drifts:
//
//   - every literal metric name must carry the dcfp_ prefix — the
//     namespace contract that keeps fleet federation (dcfp_ becomes
//     dcfp_fleet_shard_) and the alert rule language unambiguous;
//   - a name must not be registered as two different kinds (a counter in
//     one file, a gauge in another renders an unscrapeable family);
//   - a name's label key set must be identical across registration sites
//     — Prometheus rejects a family whose series disagree on label keys,
//     and the coordinator's federation keying assumes consistency;
//   - the same (name, kind, exact literal label pairs) registered from
//     two distinct call sites is a duplicate registration: both sites
//     would silently share one series, which is almost always a
//     copy/paste error rather than intent;
//   - help strings for one name must agree across sites, since the
//     exposition format carries a single HELP line per family.
//
// Sites whose name is not a string literal (the coordinator's federated
// dcfp_fleet_shard_* gauges are minted from shard snapshots at runtime)
// are out of static reach and skipped; likewise label arguments passed as
// variables or slices only weaken the checks for that site, never fail
// them. Run from the repo root: go run ./tools/metriclint
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type site struct {
	pos  token.Position
	kind string
	help string
	// keys is the sorted label key set; valid only when keysKnown (every
	// label argument was a composite literal with a literal Key).
	keys      []string
	keysKnown bool
	// pairs is the sorted key=value set; valid only when pairsKnown (every
	// label had literal key AND value — required to call two sites true
	// duplicates rather than two series of one family).
	pairs      []string
	pairsKnown bool
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	regs := map[string][]site{}

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		collect(fset, file, regs)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}

	var problems []string
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	names := make([]string, 0, len(regs))
	for n := range regs {
		names = append(names, n)
	}
	sort.Strings(names)

	total := 0
	for _, name := range names {
		sites := regs[name]
		total += len(sites)
		if !strings.HasPrefix(name, "dcfp_") {
			fail("%s: metric %q lacks the dcfp_ prefix", sites[0].pos, name)
		}
		for _, s := range sites[1:] {
			if s.kind != sites[0].kind {
				fail("%s: %q registered as %s here but %s at %s",
					s.pos, name, s.kind, sites[0].kind, sites[0].pos)
			}
		}
		// Label key sets must agree across every statically-known site.
		var ref *site
		for i := range sites {
			s := &sites[i]
			if !s.keysKnown {
				continue
			}
			if ref == nil {
				ref = s
				continue
			}
			if strings.Join(s.keys, ",") != strings.Join(ref.keys, ",") {
				fail("%s: %q label keys [%s] disagree with [%s] at %s",
					s.pos, name, strings.Join(s.keys, " "), strings.Join(ref.keys, " "), ref.pos)
			}
		}
		// Exact-duplicate detection: identical fully-literal label pairs
		// registered from two different source positions.
		byPairs := map[string]token.Position{}
		for _, s := range sites {
			if !s.pairsKnown {
				continue
			}
			key := s.kind + "\x00" + strings.Join(s.pairs, "\x00")
			if prev, dup := byPairs[key]; dup && prev != s.pos {
				fail("%s: duplicate registration of %q{%s}, first at %s",
					s.pos, name, strings.Join(s.pairs, ","), prev)
			} else if !dup {
				byPairs[key] = s.pos
			}
		}
		for _, s := range sites[1:] {
			if s.help != "" && sites[0].help != "" && s.help != sites[0].help {
				fail("%s: %q help %q disagrees with %q at %s",
					s.pos, name, s.help, sites[0].help, sites[0].pos)
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "metriclint: %d problem(s) across %d metric families\n",
			len(problems), len(regs))
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d registration sites, %d metric families, all clean\n", total, len(regs))
}

// collect records every Counter/Gauge/Histogram registration with a
// string-literal name into regs.
func collect(fset *token.FileSet, file *ast.File, regs map[string][]site) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
			return true
		}
		if len(call.Args) < 2 {
			return true
		}
		name, ok := stringLit(call.Args[0])
		if !ok {
			return true
		}
		s := site{pos: fset.Position(call.Pos()), kind: kind, keysKnown: true, pairsKnown: true}
		s.help, _ = stringLit(call.Args[1])
		labelArgs := call.Args[2:]
		if kind == "Histogram" && len(call.Args) >= 3 {
			// Histogram(name, help, buckets, labels...).
			labelArgs = call.Args[3:]
		}
		if call.Ellipsis.IsValid() {
			// labels... forwards a slice we cannot see into.
			s.keysKnown, s.pairsKnown = false, false
			labelArgs = nil
		}
		for _, arg := range labelArgs {
			k, v, kOK, vOK := labelLit(arg)
			if !kOK {
				s.keysKnown, s.pairsKnown = false, false
				break
			}
			s.keys = append(s.keys, k)
			if !vOK {
				s.pairsKnown = false
				continue
			}
			s.pairs = append(s.pairs, k+"="+v)
		}
		sort.Strings(s.keys)
		sort.Strings(s.pairs)
		regs[name] = append(regs[name], s)
		return true
	})
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	v, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return v, true
}

// labelLit extracts the Key (and, when literal, the Value) from a
// telemetry.Label composite literal argument.
func labelLit(e ast.Expr) (key, val string, keyOK, valOK bool) {
	cl, ok := e.(*ast.CompositeLit)
	if !ok || !isLabelType(cl.Type) {
		return "", "", false, false
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return "", "", false, false
		}
		field, ok := kv.Key.(*ast.Ident)
		if !ok {
			return "", "", false, false
		}
		switch field.Name {
		case "Key":
			key, keyOK = stringLit(kv.Value)
		case "Value":
			val, valOK = stringLit(kv.Value)
		}
	}
	return key, val, keyOK, valOK
}

// isLabelType matches Label and pkg.Label type expressions.
func isLabelType(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "Label"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Label"
	}
	return false
}
